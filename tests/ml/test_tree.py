"""Unit tests for repro.ml.tree.DecisionTreeRegressor."""

import numpy as np
import pytest

from repro.ml import DecisionTreeRegressor, mean_squared_error
from repro.ml.tree import _resolve_max_features


@pytest.fixture
def simple_data():
    """Step function: y = 0 for x < 0.5, y = 10 for x >= 0.5."""
    X = np.linspace(0, 1, 40).reshape(-1, 1)
    y = np.where(X.ravel() < 0.5, 0.0, 10.0)
    return X, y


class TestFitBasics:
    def test_step_function_exact(self, simple_data):
        X, y = simple_data
        tree = DecisionTreeRegressor(max_depth=1).fit(X, y)
        assert mean_squared_error(y, tree.predict(X)) == pytest.approx(0.0)

    def test_threshold_separates(self, simple_data):
        X, y = simple_data
        tree = DecisionTreeRegressor(max_depth=1).fit(X, y)
        thr = tree.tree_.threshold[0]
        assert 0.47 < thr < 0.51

    def test_depth_zero_is_mean(self, simple_data):
        X, y = simple_data
        tree = DecisionTreeRegressor(max_depth=0).fit(X, y)
        assert tree.tree_.node_count == 1
        assert tree.predict(X)[0] == pytest.approx(y.mean())

    def test_fully_grown_memorises(self):
        rng = np.random.default_rng(3)
        X = rng.normal(size=(60, 3))
        y = rng.normal(size=60)
        tree = DecisionTreeRegressor().fit(X, y)
        assert mean_squared_error(y, tree.predict(X)) == pytest.approx(0.0)

    def test_constant_target_single_node(self):
        X = np.arange(10.0).reshape(-1, 1)
        tree = DecisionTreeRegressor().fit(X, np.full(10, 7.0))
        assert tree.tree_.node_count == 1
        assert tree.predict(X).tolist() == [7.0] * 10

    def test_constant_feature_no_split(self):
        X = np.ones((20, 1))
        y = np.arange(20.0)
        tree = DecisionTreeRegressor().fit(X, y)
        assert tree.tree_.node_count == 1

    def test_single_sample(self):
        tree = DecisionTreeRegressor().fit([[1.0]], [5.0])
        assert tree.predict([[42.0]])[0] == 5.0


class TestConstraints:
    def test_max_depth_respected(self):
        rng = np.random.default_rng(0)
        X = rng.normal(size=(200, 4))
        y = rng.normal(size=200)
        for depth in (1, 2, 4):
            tree = DecisionTreeRegressor(max_depth=depth).fit(X, y)
            assert tree.tree_.max_depth <= depth

    def test_min_samples_leaf(self):
        rng = np.random.default_rng(1)
        X = rng.normal(size=(100, 3))
        y = rng.normal(size=100)
        tree = DecisionTreeRegressor(min_samples_leaf=10).fit(X, y)
        leaves = tree.tree_.children_left == -1
        assert tree.tree_.n_node_samples[leaves].min() >= 10

    def test_min_samples_split(self):
        rng = np.random.default_rng(2)
        X = rng.normal(size=(100, 3))
        y = rng.normal(size=100)
        tree = DecisionTreeRegressor(min_samples_split=50).fit(X, y)
        internal = tree.tree_.children_left != -1
        assert tree.tree_.n_node_samples[internal].min() >= 50

    def test_min_impurity_decrease_prunes(self, simple_data):
        X, y = simple_data
        # Add a noise feature; a huge threshold should block all splits.
        big = DecisionTreeRegressor(min_impurity_decrease=1e9).fit(X, y)
        assert big.tree_.node_count == 1

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            DecisionTreeRegressor(max_depth=-1)
        with pytest.raises(ValueError):
            DecisionTreeRegressor(min_samples_split=1)
        with pytest.raises(ValueError):
            DecisionTreeRegressor(min_samples_leaf=0)
        with pytest.raises(ValueError):
            DecisionTreeRegressor(min_impurity_decrease=-0.1)
        with pytest.raises(ValueError):
            DecisionTreeRegressor(reg_lambda=-1.0)


class TestMaxFeatures:
    def test_resolve_specs(self):
        assert _resolve_max_features(None, 100) == 100
        assert _resolve_max_features(1.0, 100) == 100
        assert _resolve_max_features("sqrt", 100) == 10
        assert _resolve_max_features("log2", 64) == 6
        assert _resolve_max_features(0.5, 100) == 50
        assert _resolve_max_features(7, 100) == 7
        assert _resolve_max_features(200, 100) == 100

    def test_resolve_invalid(self):
        with pytest.raises(ValueError):
            _resolve_max_features(0, 10)
        with pytest.raises(ValueError):
            _resolve_max_features(1.5, 10)
        with pytest.raises(ValueError):
            _resolve_max_features("cube", 10)

    def test_subsampled_features_deterministic_with_seed(self):
        rng = np.random.default_rng(5)
        X = rng.normal(size=(150, 10))
        y = X @ rng.normal(size=10)
        a = DecisionTreeRegressor(max_features="sqrt", random_state=42,
                                  max_depth=4).fit(X, y)
        b = DecisionTreeRegressor(max_features="sqrt", random_state=42,
                                  max_depth=4).fit(X, y)
        assert np.array_equal(a.tree_.feature, b.tree_.feature)
        assert np.array_equal(a.tree_.threshold, b.tree_.threshold,
                              equal_nan=True)


class TestRegLambda:
    def test_lambda_shrinks_leaves(self):
        X = np.array([[0.0], [1.0]])
        y = np.array([0.0, 10.0])
        plain = DecisionTreeRegressor().fit(X, y)
        reg = DecisionTreeRegressor(reg_lambda=1.0).fit(X, y)
        # leaf value = sum/(n + lambda): 10/1 vs 10/2
        assert plain.predict([[1.0]])[0] == pytest.approx(10.0)
        assert reg.predict([[1.0]])[0] == pytest.approx(5.0)

    def test_lambda_zero_is_cart(self):
        rng = np.random.default_rng(7)
        X = rng.normal(size=(100, 4))
        y = rng.normal(size=100)
        a = DecisionTreeRegressor(max_depth=3).fit(X, y)
        b = DecisionTreeRegressor(max_depth=3, reg_lambda=0.0).fit(X, y)
        assert np.array_equal(a.tree_.feature, b.tree_.feature)


class TestPredictAndValidation:
    def test_predict_before_fit(self):
        with pytest.raises(RuntimeError):
            DecisionTreeRegressor().predict([[1.0]])

    def test_wrong_width(self, simple_data):
        X, y = simple_data
        tree = DecisionTreeRegressor(max_depth=1).fit(X, y)
        with pytest.raises(ValueError):
            tree.predict(np.zeros((3, 2)))

    def test_nan_in_training_rejected(self):
        with pytest.raises(ValueError):
            DecisionTreeRegressor().fit([[np.nan]], [1.0])

    def test_mismatched_lengths(self):
        with pytest.raises(ValueError):
            DecisionTreeRegressor().fit(np.zeros((3, 1)), np.zeros(2))

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            DecisionTreeRegressor().fit(np.zeros((0, 1)), np.zeros(0))

    def test_apply_returns_leaves(self, simple_data):
        X, y = simple_data
        tree = DecisionTreeRegressor(max_depth=1).fit(X, y)
        leaves = tree.apply(X)
        assert set(np.unique(leaves)) == {1, 2}

    def test_get_set_params_roundtrip(self):
        tree = DecisionTreeRegressor(max_depth=5, min_samples_leaf=3)
        clone = DecisionTreeRegressor(**tree.get_params())
        assert clone.get_params() == tree.get_params()
        clone.set_params(max_depth=2)
        assert clone.max_depth == 2
        with pytest.raises(ValueError):
            clone.set_params(bogus=1)


class TestImportances:
    def test_single_informative_feature(self):
        rng = np.random.default_rng(11)
        X = rng.normal(size=(300, 5))
        y = 10 * X[:, 2] + 0.01 * rng.normal(size=300)
        tree = DecisionTreeRegressor(max_depth=5).fit(X, y)
        fi = tree.feature_importances_
        assert fi.argmax() == 2
        assert fi.sum() == pytest.approx(1.0)

    def test_no_split_importances_zero(self):
        X = np.ones((10, 3))
        tree = DecisionTreeRegressor().fit(X, np.arange(10.0))
        assert tree.feature_importances_.tolist() == [0.0, 0.0, 0.0]


class TestStructure:
    def test_leaf_count_consistency(self):
        rng = np.random.default_rng(13)
        X = rng.normal(size=(128, 3))
        y = rng.normal(size=128)
        tree = DecisionTreeRegressor(max_depth=4).fit(X, y)
        t = tree.tree_
        assert t.n_leaves + np.sum(t.children_left != -1) == t.node_count

    def test_children_sample_counts_sum(self):
        rng = np.random.default_rng(17)
        X = rng.normal(size=(100, 3))
        y = rng.normal(size=100)
        t = DecisionTreeRegressor(max_depth=3).fit(X, y).tree_
        for node in range(t.node_count):
            if t.children_left[node] != -1:
                assert (
                    t.n_node_samples[t.children_left[node]]
                    + t.n_node_samples[t.children_right[node]]
                    == t.n_node_samples[node]
                )

    def test_duplicate_feature_values_handled(self):
        # Many ties: splits must still respect strict value ordering.
        X = np.repeat([0.0, 1.0, 2.0], 10).reshape(-1, 1)
        y = np.repeat([1.0, 2.0, 3.0], 10)
        tree = DecisionTreeRegressor().fit(X, y)
        assert mean_squared_error(y, tree.predict(X)) == pytest.approx(0.0)
