"""Unit tests for repro.ml.shap — exact TreeSHAP vs brute-force oracle."""

import numpy as np
import pytest

from repro.ml import (
    DecisionTreeRegressor,
    GradientBoostingRegressor,
    LinearRegression,
    RandomForestRegressor,
    TreeExplainer,
    shap_importance,
)
from repro.ml.shap import (
    _tree_expected_value,
    expected_value_brute,
    shap_values_brute,
)


@pytest.fixture(scope="module")
def data():
    rng = np.random.default_rng(6)
    X = rng.normal(size=(200, 4))
    y = 2 * X[:, 0] + X[:, 1] * X[:, 2] + 0.1 * rng.normal(size=200)
    return X, y


class TestExpectedValue:
    def test_single_node(self):
        tree = DecisionTreeRegressor(max_depth=0).fit([[0.0], [1.0]],
                                                      [2.0, 4.0])
        assert _tree_expected_value(tree.tree_) == pytest.approx(3.0)

    def test_cover_weighted(self, data):
        X, y = data
        tree = DecisionTreeRegressor(max_depth=3).fit(X, y)
        # expected value equals mean prediction over the training set
        # only when leaves are exact means of their covers — true for CART
        assert _tree_expected_value(tree.tree_) == pytest.approx(
            y.mean(), rel=1e-9
        )

    def test_brute_empty_set_matches(self, data):
        X, y = data
        tree = DecisionTreeRegressor(max_depth=3).fit(X, y)
        assert expected_value_brute(
            tree.tree_, X[0], frozenset()
        ) == pytest.approx(_tree_expected_value(tree.tree_))

    def test_brute_full_set_is_prediction(self, data):
        X, y = data
        tree = DecisionTreeRegressor(max_depth=3).fit(X, y)
        known = frozenset(range(4))
        for i in range(5):
            assert expected_value_brute(
                tree.tree_, X[i], known
            ) == pytest.approx(tree.predict(X[i:i + 1])[0])


class TestTreeShapExactness:
    def test_matches_brute_force_depth2(self, data):
        X, y = data
        tree = DecisionTreeRegressor(max_depth=2).fit(X, y)
        explainer = TreeExplainer(tree)
        for i in range(10):
            fast = explainer.shap_values(X[i])[0]
            brute = shap_values_brute(tree.tree_, X[i], 4)
            assert np.allclose(fast, brute, atol=1e-10)

    def test_matches_brute_force_depth4(self, data):
        X, y = data
        tree = DecisionTreeRegressor(max_depth=4).fit(X, y)
        explainer = TreeExplainer(tree)
        for i in range(5):
            fast = explainer.shap_values(X[i])[0]
            brute = shap_values_brute(tree.tree_, X[i], 4)
            assert np.allclose(fast, brute, atol=1e-10)

    def test_repeated_feature_on_path(self):
        # Force a deep tree on one feature: the path revisits the feature,
        # exercising the unwind logic.
        rng = np.random.default_rng(0)
        X = rng.uniform(size=(100, 2))
        y = np.sin(8 * X[:, 0])
        tree = DecisionTreeRegressor(max_depth=5).fit(X, y)
        explainer = TreeExplainer(tree)
        for i in range(5):
            fast = explainer.shap_values(X[i])[0]
            brute = shap_values_brute(tree.tree_, X[i], 2)
            assert np.allclose(fast, brute, atol=1e-10)


class TestAdditivity:
    def test_tree_additivity(self, data):
        X, y = data
        tree = DecisionTreeRegressor(max_depth=5).fit(X, y)
        ex = TreeExplainer(tree)
        sv = ex.shap_values(X[:30])
        recon = ex.expected_value + sv.sum(axis=1)
        assert np.allclose(recon, tree.predict(X[:30]), atol=1e-8)

    def test_forest_additivity(self, data):
        X, y = data
        rf = RandomForestRegressor(n_estimators=6, max_depth=4,
                                   random_state=0).fit(X, y)
        ex = TreeExplainer(rf)
        sv = ex.shap_values(X[:20])
        recon = ex.expected_value + sv.sum(axis=1)
        assert np.allclose(recon, rf.predict(X[:20]), atol=1e-8)

    def test_boosting_additivity(self, data):
        X, y = data
        gb = GradientBoostingRegressor(n_estimators=10, max_depth=3,
                                       random_state=0).fit(X, y)
        ex = TreeExplainer(gb)
        sv = ex.shap_values(X[:20])
        recon = ex.expected_value + sv.sum(axis=1)
        assert np.allclose(recon, gb.predict(X[:20]), atol=1e-8)


class TestExplainerAPI:
    def test_unsupported_model(self, data):
        X, y = data
        with pytest.raises(TypeError):
            TreeExplainer(LinearRegression().fit(X, y))

    def test_unfitted_model(self):
        with pytest.raises(RuntimeError):
            TreeExplainer(DecisionTreeRegressor())

    def test_1d_input_promoted(self, data):
        X, y = data
        tree = DecisionTreeRegressor(max_depth=2).fit(X, y)
        sv = TreeExplainer(tree).shap_values(X[0])
        assert sv.shape == (1, 4)

    def test_wrong_width(self, data):
        X, y = data
        tree = DecisionTreeRegressor(max_depth=2).fit(X, y)
        with pytest.raises(ValueError):
            TreeExplainer(tree).shap_values(np.zeros((2, 7)))


class TestShapImportance:
    def test_informative_feature_dominates(self, data):
        X, y = data
        rf = RandomForestRegressor(n_estimators=5, max_depth=4,
                                   random_state=0).fit(X, y)
        imp = shap_importance(rf, X, max_samples=50, random_state=0)
        assert imp.shape == (4,)
        assert imp.argmax() == 0
        assert (imp >= 0).all()

    def test_subsampling_reproducible(self, data):
        X, y = data
        tree = DecisionTreeRegressor(max_depth=3).fit(X, y)
        a = shap_importance(tree, X, max_samples=20, random_state=1)
        b = shap_importance(tree, X, max_samples=20, random_state=1)
        assert np.array_equal(a, b)

    def test_no_subsampling_when_small(self, data):
        X, y = data
        tree = DecisionTreeRegressor(max_depth=3).fit(X, y)
        full = shap_importance(tree, X[:30])
        manual = np.abs(TreeExplainer(tree).shap_values(X[:30])).mean(axis=0)
        assert np.allclose(full, manual)
