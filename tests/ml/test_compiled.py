"""Bit-identity and behaviour tests for compiled ensemble inference.

The contract under test (see :mod:`repro.ml.compiled`): for every
splitter, ensemble shape, degenerate tree, NaN-bearing prediction row
and worker count, the flat-array kernel returns byte-for-byte the same
predictions as the interpreted per-tree path — so the predictor mode is
pure execution shape, never a modelling decision.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ml import (
    DecisionTreeRegressor,
    GradientBoostingRegressor,
    GridSearchCV,
    RandomForestRegressor,
    compile_ensemble,
    cross_val_score,
    current_predictor,
    maybe_compile,
    use_predictor,
)
from repro.ml.compiled import PREDICTORS, ensemble_compiled
from repro.ml.ensemble import StackingRegressor
from repro.ml.importance import permutation_importance
from repro.ml.linear import Ridge
from repro.obs import MetricsRegistry, use_metrics

SPLITTERS = ("exact", "hist")


@pytest.fixture(scope="module")
def data():
    rng = np.random.default_rng(7)
    X = rng.normal(size=(250, 8))
    y = 2.0 * X[:, 0] - X[:, 1] * X[:, 2] + 0.2 * rng.normal(size=250)
    return X, y


@pytest.fixture(scope="module")
def x_messy():
    """Prediction rows with NaN and ±inf entries (never seen in training)."""
    rng = np.random.default_rng(8)
    Xt = rng.normal(size=(120, 8))
    Xt[3, 1] = np.nan
    Xt[10] = np.nan
    Xt[20, 0] = np.inf
    Xt[21, 5] = -np.inf
    return Xt


def _naive(est, X):
    with use_predictor("naive"):
        return est.predict(X)


def _compiled(est, X):
    with use_predictor("compiled"):
        return est.predict(X)


class TestBitIdentity:
    @pytest.mark.parametrize("splitter", SPLITTERS)
    def test_forest(self, data, x_messy, splitter):
        X, y = data
        est = RandomForestRegressor(
            n_estimators=10, max_depth=6, max_features="sqrt",
            splitter=splitter, random_state=0,
        ).fit(X, y)
        assert np.array_equal(_naive(est, x_messy), _compiled(est, x_messy),
                              equal_nan=True)

    @pytest.mark.parametrize("splitter", SPLITTERS)
    def test_boosting(self, data, x_messy, splitter):
        X, y = data
        est = GradientBoostingRegressor(
            n_estimators=12, max_depth=3, splitter=splitter,
            random_state=1,
        ).fit(X, y)
        assert np.array_equal(_naive(est, x_messy), _compiled(est, x_messy),
                              equal_nan=True)

    @pytest.mark.parametrize("splitter", SPLITTERS)
    def test_single_tree(self, data, x_messy, splitter):
        X, y = data
        est = DecisionTreeRegressor(
            max_depth=5, splitter=splitter, random_state=2,
        ).fit(X, y)
        compiled = compile_ensemble(est)
        assert np.array_equal(est.predict(x_messy),
                              compiled.predict(x_messy), equal_nan=True)

    @pytest.mark.parametrize("splitter", SPLITTERS)
    def test_n_jobs_tree_chunking(self, data, splitter):
        X, y = data
        est = RandomForestRegressor(
            n_estimators=16, max_depth=8, splitter=splitter,
            random_state=3,
        ).fit(X, y)
        compiled = compile_ensemble(est)
        big = np.tile(X, (80, 1))  # large enough to cross the cell gate
        assert np.array_equal(compiled.predict(big, n_jobs=1),
                              compiled.predict(big, n_jobs=4))

    def test_identical_for_any_n_jobs_through_estimator(self, data):
        X, y = data
        serial = RandomForestRegressor(
            n_estimators=8, max_depth=5, random_state=4, n_jobs=1,
        ).fit(X, y)
        parallel = RandomForestRegressor(
            n_estimators=8, max_depth=5, random_state=4, n_jobs=4,
        ).fit(X, y)
        assert np.array_equal(_compiled(serial, X), _naive(parallel, X))


class TestDegenerateTrees:
    def test_single_leaf_constant_target(self, x_messy):
        rng = np.random.default_rng(0)
        X = rng.normal(size=(50, 8))
        y = np.full(50, 3.25)
        for splitter in SPLITTERS:
            est = DecisionTreeRegressor(splitter=splitter).fit(X, y)
            compiled = compile_ensemble(est)
            assert compiled.depth == 0
            assert np.array_equal(est.predict(x_messy),
                                  compiled.predict(x_messy))

    def test_stump(self, data, x_messy):
        X, y = data
        for splitter in SPLITTERS:
            est = DecisionTreeRegressor(
                max_depth=1, splitter=splitter, random_state=0
            ).fit(X, y)
            compiled = compile_ensemble(est)
            assert np.array_equal(est.predict(x_messy),
                                  compiled.predict(x_messy), equal_nan=True)

    def test_constant_features(self, x_messy):
        rng = np.random.default_rng(1)
        X = np.ones((60, 8))
        X[:, 0] = rng.normal(size=60)
        y = X[:, 0] * 2 + rng.normal(size=60) * 0.1
        for splitter in SPLITTERS:
            est = RandomForestRegressor(
                n_estimators=5, max_depth=4, splitter=splitter,
                random_state=0,
            ).fit(X, y)
            assert np.array_equal(_naive(est, x_messy),
                                  _compiled(est, x_messy), equal_nan=True)

    def test_empty_prediction_batch(self, data):
        X, y = data
        est = GradientBoostingRegressor(
            n_estimators=3, max_depth=2, random_state=0
        ).fit(X, y)
        out = compile_ensemble(est).predict(np.empty((0, 8)))
        assert out.shape == (0,)


class TestBitIdentityProperty:
    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 10_000),
           splitter=st.sampled_from(SPLITTERS),
           nan_rows=st.booleans())
    def test_random_ensembles(self, seed, splitter, nan_rows):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(20, 120))
        f = int(rng.integers(1, 7))
        X = rng.normal(size=(n, f))
        y = rng.normal(size=n)
        Xt = rng.normal(size=(40, f))
        if nan_rows:
            Xt[rng.integers(0, 40, 5), rng.integers(0, f, 5)] = np.nan
        est = RandomForestRegressor(
            n_estimators=int(rng.integers(1, 8)),
            max_depth=int(rng.integers(1, 8)),
            splitter=splitter, random_state=seed,
        ).fit(X, y)
        assert np.array_equal(_naive(est, Xt), _compiled(est, Xt),
                              equal_nan=True)


class TestBinnedPath:
    def test_hist_compiles_with_bins(self, data):
        X, y = data
        est = RandomForestRegressor(
            n_estimators=4, max_depth=4, splitter="hist", random_state=0
        ).fit(X, y)
        compiled = compile_ensemble(est)
        assert compiled.has_bins

    def test_exact_compiles_without_bins(self, data):
        X, y = data
        est = RandomForestRegressor(
            n_estimators=4, max_depth=4, splitter="exact", random_state=0
        ).fit(X, y)
        assert not compile_ensemble(est).has_bins

    def test_binned_equals_raw_kernel(self, data, x_messy):
        X, y = data
        est = GradientBoostingRegressor(
            n_estimators=8, max_depth=3, splitter="hist", random_state=0
        ).fit(X, y)
        compiled = compile_ensemble(est)
        assert compiled.has_bins
        codes = compiled.bin(x_messy)
        assert codes.dtype == np.uint8
        assert np.array_equal(compiled.predict_binned(codes),
                              _naive(est, x_messy), equal_nan=True)


class TestPredictMany:
    def test_matches_per_matrix_predicts(self, data):
        X, y = data
        est = RandomForestRegressor(
            n_estimators=6, max_depth=5, splitter="hist", random_state=0
        ).fit(X, y)
        compiled = compile_ensemble(est)
        rng = np.random.default_rng(0)
        mats = [rng.normal(size=(int(rng.integers(1, 200)), 8))
                for _ in range(7)]
        outs = compiled.predict_many(mats)
        assert len(outs) == len(mats)
        for mat, out in zip(mats, outs):
            assert np.array_equal(out, compiled.predict(mat))

    def test_rejects_wrong_width(self, data):
        X, y = data
        est = DecisionTreeRegressor(max_depth=3, random_state=0).fit(X, y)
        compiled = compile_ensemble(est)
        with pytest.raises(ValueError):
            compiled.predict_many([np.zeros((3, 5))])


class TestPredictorMode:
    def test_default_is_naive(self):
        assert current_predictor() == "naive"

    def test_context_nests_and_restores(self):
        with use_predictor("compiled"):
            assert current_predictor() == "compiled"
            with use_predictor("naive"):
                assert current_predictor() == "naive"
            assert current_predictor() == "compiled"
        assert current_predictor() == "naive"

    def test_none_is_a_no_op(self):
        with use_predictor("compiled"):
            with use_predictor(None):
                assert current_predictor() == "compiled"

    def test_rejects_unknown_mode(self):
        with pytest.raises(ValueError, match="predictor"):
            with use_predictor("jit"):
                pass  # pragma: no cover

    def test_modes_are_exported(self):
        assert PREDICTORS == ("compiled", "naive")


class TestCompileDispatch:
    def test_maybe_compile_rejects_non_ensembles(self, data):
        X, y = data
        assert maybe_compile(Ridge().fit(X, y)) is None

    def test_maybe_compile_rejects_stacking(self, data):
        X, y = data
        stack = StackingRegressor(
            estimators=[
                ("rf", RandomForestRegressor(
                    n_estimators=2, max_depth=2, random_state=0)),
            ],
            final_estimator=Ridge(),
        ).fit(X, y)
        assert maybe_compile(stack) is None

    def test_unfitted_raises(self):
        with pytest.raises(TypeError):
            compile_ensemble(RandomForestRegressor())

    def test_instance_cache_reused_and_reset_by_fit(self, data):
        X, y = data
        est = RandomForestRegressor(
            n_estimators=3, max_depth=3, random_state=0
        ).fit(X, y)
        first = ensemble_compiled(est)
        assert ensemble_compiled(est) is first
        est.fit(X, y)
        assert est._compiled_ is None
        assert ensemble_compiled(est) is not first

    def test_serialisation_round_trip(self, data, x_messy):
        from repro.ml.compiled import CompiledEnsemble

        X, y = data
        est = GradientBoostingRegressor(
            n_estimators=5, max_depth=3, splitter="hist", random_state=0
        ).fit(X, y)
        compiled = compile_ensemble(est)
        clone = CompiledEnsemble.from_dict(compiled.to_dict())
        assert np.array_equal(clone.predict(x_messy),
                              compiled.predict(x_messy), equal_nan=True)


class TestDownstreamEquivalence:
    """The knob must never change a pipeline-level number."""

    def test_permutation_importance(self, data):
        X, y = data
        for splitter in SPLITTERS:
            est = RandomForestRegressor(
                n_estimators=5, max_depth=4, splitter=splitter,
                random_state=0,
            ).fit(X, y)
            with use_predictor("naive"):
                ref = permutation_importance(
                    est, X, y, n_repeats=3, random_state=0)
            with use_predictor("compiled"):
                fast = permutation_importance(
                    est, X, y, n_repeats=3, random_state=0)
            assert np.array_equal(ref, fast)

    def test_permutation_importance_parallel_path(self, data):
        X, y = data
        est = GradientBoostingRegressor(
            n_estimators=5, max_depth=2, splitter="hist", random_state=0
        ).fit(X, y)
        with use_predictor("compiled"):
            serial = permutation_importance(
                est, X, y, n_repeats=2, random_state=1, n_jobs=1)
            fanned = permutation_importance(
                est, X, y, n_repeats=2, random_state=1, n_jobs=2)
        assert np.array_equal(serial, fanned)

    def test_cross_val_score(self, data):
        X, y = data
        est = RandomForestRegressor(
            n_estimators=4, max_depth=3, random_state=0)
        with use_predictor("naive"):
            ref = cross_val_score(est, X, y)
        with use_predictor("compiled"):
            fast = cross_val_score(est, X, y)
        assert np.array_equal(ref, fast)

    def test_grid_search(self, data):
        X, y = data
        grid = {"max_depth": [2, 3], "random_state": [0]}
        with use_predictor("naive"):
            ref = GridSearchCV(
                GradientBoostingRegressor(n_estimators=4),
                grid, n_jobs=1).fit(X, y)
        with use_predictor("compiled"):
            fast = GridSearchCV(
                GradientBoostingRegressor(n_estimators=4),
                grid, n_jobs=2).fit(X, y)
        assert ref.best_params_ == fast.best_params_
        assert ref.best_score_ == fast.best_score_


class TestMetricsCounters:
    def test_compiled_and_naive_counters(self, data):
        X, y = data
        est = RandomForestRegressor(
            n_estimators=3, max_depth=3, random_state=0
        ).fit(X, y)
        registry = MetricsRegistry()
        with use_metrics(registry):
            with use_predictor("compiled"):
                est.predict(X)
            with use_predictor("naive"):
                est.predict(X)
        counters = registry.snapshot()["counters"]
        assert counters["predict.compiled_calls"] == 1
        assert counters["predict.compiled_rows"] == X.shape[0]
        assert counters["predict.naive_calls"] == 1
        assert counters["predict.naive_rows"] == X.shape[0]
        assert counters["predict.compile_builds"] == 1


class TestPermutationScorer:
    @pytest.mark.parametrize("splitter", SPLITTERS)
    def test_matches_stacked_predict(self, data, splitter):
        X, y = data
        est = GradientBoostingRegressor(
            n_estimators=6, max_depth=3, splitter=splitter, random_state=0
        ).fit(X, y)
        compiled = compile_ensemble(est)
        base = compiled.bin(X) if compiled.has_bins else X
        scorer = compiled.permutation_scorer(base,
                                             binned=compiled.has_bins)
        rng = np.random.default_rng(3)
        perms = np.stack([rng.permutation(X.shape[0]) for _ in range(4)])
        for j in (0, 3, X.shape[1] - 1):
            stacked = np.tile(base, (4, 1))
            stacked[:, j] = base[:, j][perms].ravel()
            if compiled.has_bins:
                ref = compiled.predict_binned(stacked)
            else:
                ref = compiled.predict(stacked)
            assert np.array_equal(scorer.predict_feature(j, perms), ref,
                                  equal_nan=True)

    def test_path_mask_marks_only_path_features(self, data):
        X, y = data
        est = DecisionTreeRegressor(max_depth=2, random_state=0).fit(X, y)
        compiled = compile_ensemble(est)
        mask = compiled.path_mask
        root = int(compiled.roots[0])
        assert mask[root].sum() == 0  # nothing above the root
        root_bit = np.uint64(1) << np.uint64(compiled.feature[root])
        for child in (compiled.left[root], compiled.right[root]):
            assert mask[child, 0] & root_bit
