"""Unit tests for repro.ml.model_selection."""

import numpy as np
import pytest

from repro.ml import (
    DecisionTreeRegressor,
    GridSearchCV,
    KFold,
    ParameterGrid,
    RandomForestRegressor,
    TimeSeriesSplit,
    clone,
    cross_val_score,
    train_test_split,
)


@pytest.fixture(scope="module")
def data():
    rng = np.random.default_rng(2)
    X = rng.normal(size=(120, 4))
    y = X[:, 0] + 0.5 * X[:, 1] + 0.1 * rng.normal(size=120)
    return X, y


class TestKFold:
    def test_partition_covers_everything_once(self):
        kf = KFold(5)
        seen = []
        for train, test in kf.split(np.zeros(53)):
            seen.extend(test.tolist())
            assert set(train) | set(test) == set(range(53))
            assert not set(train) & set(test)
        assert sorted(seen) == list(range(53))

    def test_n_splits_count(self):
        assert len(list(KFold(4).split(np.zeros(20)))) == 4

    def test_uneven_fold_sizes(self):
        sizes = [len(test) for _, test in KFold(3).split(np.zeros(10))]
        assert sorted(sizes) == [3, 3, 4]

    def test_shuffle_reproducible(self):
        a = [t.tolist() for _, t in
             KFold(3, shuffle=True, random_state=1).split(np.zeros(12))]
        b = [t.tolist() for _, t in
             KFold(3, shuffle=True, random_state=1).split(np.zeros(12))]
        assert a == b

    def test_shuffle_changes_order(self):
        plain = [t.tolist() for _, t in KFold(3).split(np.zeros(12))]
        shuffled = [t.tolist() for _, t in
                    KFold(3, shuffle=True, random_state=1).split(np.zeros(12))]
        assert plain != shuffled

    def test_too_few_samples(self):
        with pytest.raises(ValueError):
            list(KFold(5).split(np.zeros(3)))

    def test_min_splits(self):
        with pytest.raises(ValueError):
            KFold(1)


class TestTimeSeriesSplit:
    def test_test_always_after_train(self):
        for train, test in TimeSeriesSplit(4).split(np.zeros(50)):
            assert train.max() < test.min()

    def test_expanding_train(self):
        lengths = [len(train) for train, _ in
                   TimeSeriesSplit(4).split(np.zeros(50))]
        assert lengths == sorted(lengths)
        assert lengths[0] > 0

    def test_split_count(self):
        assert len(list(TimeSeriesSplit(3).split(np.zeros(40)))) == 3

    def test_too_few_samples(self):
        with pytest.raises(ValueError):
            list(TimeSeriesSplit(5).split(np.zeros(4)))


class TestParameterGrid:
    def test_cartesian_product(self):
        grid = ParameterGrid({"a": [1, 2], "b": ["x", "y", "z"]})
        combos = list(grid)
        assert len(grid) == 6 == len(combos)
        assert {"a": 2, "b": "y"} in combos

    def test_single_param(self):
        assert list(ParameterGrid({"d": [3]})) == [{"d": 3}]

    def test_empty_values_rejected(self):
        with pytest.raises(ValueError):
            ParameterGrid({"a": []})

    def test_string_values_rejected(self):
        with pytest.raises(TypeError):
            ParameterGrid({"a": "abc"})

    def test_non_mapping_rejected(self):
        with pytest.raises(TypeError):
            ParameterGrid([("a", [1])])


class TestClone:
    def test_clone_is_unfitted_copy(self, data):
        X, y = data
        model = DecisionTreeRegressor(max_depth=3).fit(X, y)
        fresh = clone(model)
        assert fresh.get_params() == model.get_params()
        assert fresh.tree_ is None


class TestCrossValScore:
    def test_returns_fold_scores(self, data):
        X, y = data
        scores = cross_val_score(
            DecisionTreeRegressor(max_depth=3), X, y, cv=KFold(4)
        )
        assert scores.shape == (4,)
        assert (scores >= 0).all()

    def test_default_cv_is_5fold(self, data):
        X, y = data
        scores = cross_val_score(DecisionTreeRegressor(max_depth=2), X, y)
        assert scores.shape == (5,)


class TestGridSearchCV:
    def test_finds_best_params(self, data):
        X, y = data
        gs = GridSearchCV(
            DecisionTreeRegressor(),
            {"max_depth": [1, 5]},
            cv=KFold(3),
        ).fit(X, y)
        # depth 5 captures the linear signal far better than a stump
        assert gs.best_params_ == {"max_depth": 5}
        assert gs.best_estimator_ is not None
        assert len(gs.cv_results_) == 2

    def test_best_score_is_min_mean(self, data):
        X, y = data
        gs = GridSearchCV(
            DecisionTreeRegressor(),
            {"max_depth": [1, 2, 4]},
            cv=KFold(3),
        ).fit(X, y)
        assert gs.best_score_ == min(
            r["mean_score"] for r in gs.cv_results_
        )

    def test_predict_uses_refit_model(self, data):
        X, y = data
        gs = GridSearchCV(
            DecisionTreeRegressor(), {"max_depth": [3]}, cv=KFold(3)
        ).fit(X, y)
        direct = DecisionTreeRegressor(max_depth=3).fit(X, y)
        assert np.allclose(gs.predict(X), direct.predict(X))

    def test_no_refit(self, data):
        X, y = data
        gs = GridSearchCV(
            DecisionTreeRegressor(), {"max_depth": [2]},
            cv=KFold(3), refit=False,
        ).fit(X, y)
        assert gs.best_estimator_ is None
        with pytest.raises(RuntimeError):
            gs.predict(X)

    def test_works_with_forest(self, data):
        X, y = data
        gs = GridSearchCV(
            RandomForestRegressor(n_estimators=3, random_state=0),
            {"max_depth": [2, 6]},
            cv=KFold(3),
        ).fit(X, y)
        assert gs.best_params_["max_depth"] == 6


class TestTrainTestSplit:
    def test_sizes(self, data):
        X, y = data
        X_tr, X_te, y_tr, y_te = train_test_split(X, y, test_size=0.25,
                                                  random_state=0)
        assert len(X_te) == 30
        assert len(X_tr) == 90
        assert len(y_tr) == 90 and len(y_te) == 30

    def test_chronological_when_not_shuffled(self, data):
        X, y = data
        X_tr, X_te, _, _ = train_test_split(X, y, test_size=0.2,
                                            shuffle=False)
        assert np.array_equal(X_tr, X[:96])
        assert np.array_equal(X_te, X[96:])

    def test_reproducible(self, data):
        X, y = data
        a = train_test_split(X, y, random_state=3)
        b = train_test_split(X, y, random_state=3)
        assert np.array_equal(a[0], b[0])

    def test_bad_test_size(self, data):
        X, y = data
        with pytest.raises(ValueError):
            train_test_split(X, y, test_size=0.0)
        with pytest.raises(ValueError):
            train_test_split(X, y, test_size=1.0)

    def test_mismatched_lengths(self):
        with pytest.raises(ValueError):
            train_test_split(np.zeros((5, 1)), np.zeros(4))
