"""Unit tests for repro.frame.validation."""

import numpy as np
import pytest

from repro.frame import (
    ColumnRule,
    Frame,
    date_range,
    validate_frame,
)

NAN = np.nan


@pytest.fixture
def frame():
    idx = date_range("2020-01-01", periods=5)
    return Frame(idx, {
        "price": [100.0, 101.0, 99.0, 102.0, 103.0],
        "usdc_supply": [1e9, 1.1e9, NAN, 1.2e9, 1.25e9],
        "sentiment_score": [-0.5, 0.3, 0.0, 2.0, -1.5],
    })


class TestRules:
    def test_clean_frame_passes(self, frame):
        report = validate_frame(frame, [
            ColumnRule("price", min_value=0.0, allow_nan=False),
        ])
        assert report.ok
        assert report.n_columns_checked == 1

    def test_min_value_violation(self, frame):
        report = validate_frame(frame, [
            ColumnRule("sentiment_score", min_value=0.0),
        ])
        assert not report.ok
        assert any("min_value" in i.rule for i in report.issues)

    def test_max_value_violation(self, frame):
        report = validate_frame(frame, [
            ColumnRule("price", max_value=100.0),
        ])
        assert len(report.issues) == 1

    def test_nan_rules(self, frame):
        strict = validate_frame(frame, [
            ColumnRule("usdc_*", allow_nan=False),
        ])
        assert not strict.ok
        lenient = validate_frame(frame, [
            ColumnRule("usdc_*", max_nan_fraction=0.5),
        ])
        assert lenient.ok
        tight = validate_frame(frame, [
            ColumnRule("usdc_*", max_nan_fraction=0.1),
        ])
        assert not tight.ok

    def test_infinite_values_detected(self):
        idx = date_range("2020-01-01", periods=2)
        f = Frame(idx, {"x": [1.0, np.inf]})
        report = validate_frame(f, [ColumnRule("x")])
        assert any("require_finite" in i.rule for i in report.issues)

    def test_glob_patterns(self, frame):
        report = validate_frame(frame, [
            ColumnRule("*", min_value=-1e12),
        ])
        assert report.n_columns_checked == 3

    def test_unmatched_columns_ignored(self, frame):
        report = validate_frame(frame, [
            ColumnRule("volume_*", allow_nan=False),
        ])
        assert report.ok
        assert report.n_columns_checked == 0

    def test_multiple_rules_accumulate(self, frame):
        report = validate_frame(frame, [
            ColumnRule("sentiment_score", min_value=0.0),
            ColumnRule("sentiment_*", max_value=1.0),
        ])
        assert len(report.issues) == 2

    def test_raise_if_failed(self, frame):
        report = validate_frame(frame, [
            ColumnRule("price", max_value=0.0),
        ])
        with pytest.raises(ValueError, match="price"):
            report.raise_if_failed()
        # ok report raises nothing
        validate_frame(frame, []).raise_if_failed()

    def test_issue_str(self, frame):
        report = validate_frame(frame, [
            ColumnRule("price", max_value=0.0),
        ])
        text = str(report.issues[0])
        assert "price" in text and "max_value" in text


class TestOnGeneratedData:
    def test_raw_dataset_passes_sanity_rules(self, small_raw):
        """The simulator's output must satisfy basic physical bounds."""
        rules = [
            ColumnRule("SplyCur", min_value=0.0, allow_nan=False),
            ColumnRule("*_Close", min_value=0.0, allow_nan=False),
            ColumnRule("fear_greed_index", min_value=0.0,
                       max_value=100.0, max_nan_fraction=0.9),
            ColumnRule("fish_pct", min_value=0.0, max_value=1.0),
            ColumnRule("usdc_SplyCur", min_value=0.0,
                       max_nan_fraction=0.9),
        ]
        report = validate_frame(small_raw.features, rules)
        assert report.ok, [str(i) for i in report.issues]
        assert report.n_columns_checked >= 5
