"""Unit tests for repro.frame.index."""

import datetime as dt

import numpy as np
import pytest

from repro.frame import DateIndex, as_ordinal, date_range


class TestAsOrdinal:
    def test_iso_string(self):
        assert as_ordinal("2017-01-01") == dt.date(2017, 1, 1).toordinal()

    def test_date_object(self):
        d = dt.date(2019, 6, 30)
        assert as_ordinal(d) == d.toordinal()

    def test_datetime_object(self):
        d = dt.datetime(2019, 6, 30, 14, 30)
        assert as_ordinal(d) == dt.date(2019, 6, 30).toordinal()

    def test_int_passthrough(self):
        assert as_ordinal(736330) == 736330

    def test_numpy_int(self):
        assert as_ordinal(np.int64(10)) == 10

    def test_bad_type(self):
        with pytest.raises(TypeError):
            as_ordinal(3.14)

    def test_bad_string(self):
        with pytest.raises(ValueError):
            as_ordinal("not-a-date")


class TestDateRange:
    def test_periods(self):
        idx = date_range("2017-01-01", periods=3)
        assert idx.isoformat() == ["2017-01-01", "2017-01-02", "2017-01-03"]

    def test_end_inclusive(self):
        idx = date_range("2017-01-01", end="2017-01-03")
        assert len(idx) == 3
        assert idx[-1] == dt.date(2017, 1, 3)

    def test_single_day(self):
        idx = date_range("2020-02-29", end="2020-02-29")
        assert len(idx) == 1

    def test_zero_periods(self):
        assert len(date_range("2017-01-01", periods=0)) == 0

    def test_both_args_error(self):
        with pytest.raises(ValueError):
            date_range("2017-01-01", end="2017-01-05", periods=5)

    def test_neither_arg_error(self):
        with pytest.raises(ValueError):
            date_range("2017-01-01")

    def test_end_before_start_error(self):
        with pytest.raises(ValueError):
            date_range("2017-01-05", end="2017-01-01")

    def test_spans_leap_day(self):
        idx = date_range("2020-02-28", end="2020-03-01")
        assert idx.isoformat() == [
            "2020-02-28", "2020-02-29", "2020-03-01"
        ]


class TestDateIndex:
    def test_from_strings(self):
        idx = DateIndex(["2017-01-01", "2017-01-05"])
        assert len(idx) == 2
        assert not idx.is_contiguous

    def test_contiguity(self):
        assert date_range("2017-01-01", periods=10).is_contiguous

    def test_must_be_increasing(self):
        with pytest.raises(ValueError):
            DateIndex(["2017-01-02", "2017-01-01"])

    def test_no_duplicates(self):
        with pytest.raises(ValueError):
            DateIndex(["2017-01-01", "2017-01-01"])

    def test_contains(self):
        idx = date_range("2017-01-01", periods=5)
        assert "2017-01-03" in idx
        assert "2017-02-01" not in idx
        assert "garbage" not in idx

    def test_position(self):
        idx = date_range("2017-01-01", periods=5)
        assert idx.position("2017-01-01") == 0
        assert idx.position("2017-01-05") == 4

    def test_position_missing_raises(self):
        idx = date_range("2017-01-01", periods=5)
        with pytest.raises(KeyError):
            idx.position("2018-01-01")

    def test_getitem_int(self):
        idx = date_range("2017-01-01", periods=5)
        assert idx[2] == dt.date(2017, 1, 3)
        assert idx[-1] == dt.date(2017, 1, 5)

    def test_getitem_slice(self):
        idx = date_range("2017-01-01", periods=5)
        sub = idx[1:3]
        assert isinstance(sub, DateIndex)
        assert sub.isoformat() == ["2017-01-02", "2017-01-03"]

    def test_equality(self):
        a = date_range("2017-01-01", periods=5)
        b = date_range("2017-01-01", periods=5)
        c = date_range("2017-01-02", periods=5)
        assert a == b
        assert a != c
        assert hash(a) == hash(b)

    def test_iteration_yields_dates(self):
        idx = date_range("2017-01-01", periods=3)
        days = list(idx)
        assert all(isinstance(d, dt.date) for d in days)

    def test_immutable_ordinals(self):
        idx = date_range("2017-01-01", periods=3)
        with pytest.raises(ValueError):
            idx.ordinals[0] = 0

    def test_repr(self):
        assert "2017-01-01" in repr(date_range("2017-01-01", periods=3))
        assert repr(date_range("2017-01-01", periods=0)) == "DateIndex([])"


class TestSliceAndAlign:
    def test_slice_positions_full(self):
        idx = date_range("2017-01-01", periods=10)
        assert idx.slice_positions() == slice(0, 10)

    def test_slice_positions_range(self):
        idx = date_range("2017-01-01", periods=10)
        s = idx.slice_positions("2017-01-03", "2017-01-05")
        assert s == slice(2, 5)

    def test_slice_positions_outside(self):
        idx = date_range("2017-01-05", periods=3)
        s = idx.slice_positions("2016-01-01", "2018-01-01")
        assert s == slice(0, 3)

    def test_indexer_matches(self):
        a = date_range("2017-01-01", periods=5)
        b = DateIndex(["2017-01-02", "2017-01-04", "2018-01-01"])
        pos = a.indexer(b)
        assert pos.tolist() == [1, 3, -1]

    def test_indexer_empty_self(self):
        a = date_range("2017-01-01", periods=0)
        b = date_range("2017-01-01", periods=3)
        assert a.indexer(b).tolist() == [-1, -1, -1]


class TestSetOps:
    def test_union(self):
        a = date_range("2017-01-01", periods=3)
        b = date_range("2017-01-03", periods=3)
        u = a.union(b)
        assert len(u) == 5
        assert u.is_contiguous

    def test_intersection(self):
        a = date_range("2017-01-01", periods=5)
        b = date_range("2017-01-04", periods=5)
        i = a.intersection(b)
        assert i.isoformat() == ["2017-01-04", "2017-01-05"]

    def test_difference(self):
        a = date_range("2017-01-01", periods=5)
        b = date_range("2017-01-04", periods=5)
        d = a.difference(b)
        assert d.isoformat() == ["2017-01-01", "2017-01-02", "2017-01-03"]

    def test_union_disjoint(self):
        a = date_range("2017-01-01", periods=2)
        b = date_range("2019-01-01", periods=2)
        assert len(a.union(b)) == 4

    def test_shift(self):
        idx = date_range("2017-01-01", periods=3)
        shifted = idx.shift(7)
        assert shifted[0] == dt.date(2017, 1, 8)
        assert len(shifted) == 3

    def test_from_ordinals_roundtrip(self):
        idx = date_range("2017-01-01", periods=4)
        again = DateIndex.from_ordinals(idx.ordinals.tolist())
        assert again == idx

    def test_from_ordinals_rejects_unsorted(self):
        with pytest.raises(ValueError):
            DateIndex.from_ordinals([5, 4, 3])
