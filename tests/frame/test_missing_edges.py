"""Edge cases for repro.frame.missing: empty/all-NaN inputs and the
``limit=`` cap on fill runs."""

import numpy as np
import pytest

from repro.frame import (
    Frame,
    backward_fill,
    date_range,
    fill_frame,
    forward_fill,
    interpolate_linear,
    longest_flat_run,
    longest_nan_run,
)

NAN = np.nan


class TestAllNanColumns:
    def test_forward_fill_all_nan_unchanged(self):
        out = forward_fill(np.array([NAN, NAN, NAN]))
        assert np.isnan(out).all()

    def test_backward_fill_all_nan_unchanged(self):
        out = backward_fill(np.array([NAN, NAN, NAN]), limit=5)
        assert np.isnan(out).all()

    def test_fill_frame_with_all_nan_column(self):
        index = date_range("2020-01-01", periods=4)
        frame = Frame(index, {
            "dead": np.full(4, NAN),
            "alive": np.array([1.0, NAN, NAN, 4.0]),
        })
        out = fill_frame(frame, "ffill")
        assert np.isnan(out["dead"]).all()
        assert out["alive"].tolist() == [1.0, 1.0, 1.0, 4.0]

    def test_longest_runs_on_all_nan(self):
        values = np.full(5, NAN)
        assert longest_nan_run(values) == 5
        assert longest_flat_run(values) == 1


class TestLimitAtRunBoundaries:
    def test_limit_equal_to_gap_fills_everything(self):
        out = forward_fill(np.array([1.0, NAN, NAN, 4.0]), limit=2)
        assert out.tolist() == [1.0, 1.0, 1.0, 4.0]

    def test_limit_one_below_gap_leaves_last_nan(self):
        out = forward_fill(np.array([1.0, NAN, NAN, 4.0]), limit=1)
        assert out[1] == 1.0
        assert np.isnan(out[2])
        assert out[3] == 4.0

    def test_limit_zero_fills_nothing(self):
        out = forward_fill(np.array([1.0, NAN, NAN, 4.0]), limit=0)
        assert out[0] == 1.0
        assert np.isnan(out[1]) and np.isnan(out[2])

    def test_gap_ending_at_series_end(self):
        out = forward_fill(np.array([1.0, NAN, NAN]), limit=1)
        assert out[1] == 1.0
        assert np.isnan(out[2])

    def test_backward_fill_limit_at_series_start(self):
        out = backward_fill(np.array([NAN, NAN, 3.0]), limit=1)
        assert np.isnan(out[0])
        assert out[1] == 3.0

    def test_limit_applies_per_gap_not_globally(self):
        values = np.array([1.0, NAN, 2.0, NAN, 3.0])
        out = forward_fill(values, limit=1)
        assert out.tolist() == [1.0, 1.0, 2.0, 2.0, 3.0]


class TestFillFrameLimit:
    def _frame(self):
        index = date_range("2020-01-01", periods=5)
        return Frame(index, {
            "a": np.array([1.0, NAN, NAN, NAN, 5.0]),
        })

    def test_ffill_limit_forwarded(self):
        out = fill_frame(self._frame(), "ffill", limit=1)
        assert out["a"][1] == 1.0
        assert np.isnan(out["a"][2]) and np.isnan(out["a"][3])

    def test_bfill_limit_forwarded(self):
        out = fill_frame(self._frame(), "bfill", limit=1)
        assert np.isnan(out["a"][1]) and np.isnan(out["a"][2])
        assert out["a"][3] == 5.0

    def test_no_limit_fills_whole_gap(self):
        out = fill_frame(self._frame(), "ffill")
        assert not np.isnan(out["a"]).any()

    def test_interpolate_with_limit_rejected(self):
        with pytest.raises(ValueError, match="only supported"):
            fill_frame(self._frame(), "interpolate", limit=2)

    def test_negative_limit_rejected(self):
        with pytest.raises(ValueError, match=">= 0"):
            fill_frame(self._frame(), "ffill", limit=-1)

    def test_unknown_method_still_rejected(self):
        with pytest.raises(ValueError, match="unknown fill method"):
            fill_frame(self._frame(), "magic", limit=1)


class TestEmptyFrames:
    def test_fill_empty_frame(self):
        frame = Frame(date_range("2020-01-01", periods=0), {})
        out = fill_frame(frame, "ffill", limit=3)
        assert out.n_rows == 0
        assert out.n_cols == 0

    def test_fill_zero_row_column(self):
        frame = Frame(date_range("2020-01-01", periods=0),
                      {"a": np.empty(0)})
        out = fill_frame(frame, "ffill")
        assert out["a"].size == 0

    def test_interpolate_empty(self):
        assert interpolate_linear(np.empty(0)).size == 0

    def test_fills_empty(self):
        assert forward_fill(np.empty(0), limit=2).size == 0
        assert backward_fill(np.empty(0)).size == 0
