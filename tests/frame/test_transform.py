"""Unit tests for repro.frame.transform."""

import numpy as np
import pytest

from repro.frame import (
    Frame,
    date_range,
    diff,
    resample_frame,
    winsorize,
    zscore,
)

NAN = np.nan


class TestDiff:
    def test_basic(self):
        out = diff(np.array([1.0, 4.0, 9.0]))
        assert np.isnan(out[0])
        assert out[1:].tolist() == [3.0, 5.0]

    def test_periods(self):
        out = diff(np.array([1.0, 2.0, 4.0, 8.0]), periods=2)
        assert np.isnan(out[:2]).all()
        assert out[2:].tolist() == [3.0, 6.0]

    def test_short_series(self):
        assert np.isnan(diff(np.array([1.0]), 1)).all()

    def test_bad_periods(self):
        with pytest.raises(ValueError):
            diff(np.array([1.0]), 0)


class TestZscore:
    def test_zero_mean_unit_std(self):
        rng = np.random.default_rng(0)
        z = zscore(rng.normal(10, 5, 500))
        assert abs(z.mean()) < 1e-12
        assert z.std() == pytest.approx(1.0)

    def test_nan_aware(self):
        z = zscore(np.array([1.0, NAN, 3.0]))
        assert np.isnan(z[1])
        assert z[0] == pytest.approx(-1.0)
        assert z[2] == pytest.approx(1.0)

    def test_constant_series_zeros(self):
        z = zscore(np.full(5, 7.0))
        assert z.tolist() == [0.0] * 5

    def test_all_nan_passthrough(self):
        assert np.isnan(zscore(np.array([NAN, NAN]))).all()


class TestWinsorize:
    def test_clips_extremes(self):
        values = np.concatenate((np.zeros(98), [1000.0, -1000.0]))
        out = winsorize(values, 1.0, 99.0)
        assert out.max() < 1000.0
        assert out.min() > -1000.0

    def test_interior_unchanged(self):
        values = np.arange(100.0)
        out = winsorize(values, 5.0, 95.0)
        assert np.array_equal(out[10:90], values[10:90])

    def test_nan_preserved(self):
        out = winsorize(np.array([1.0, NAN, 100.0]), 0.0, 100.0)
        assert np.isnan(out[1])

    def test_bad_bounds(self):
        with pytest.raises(ValueError):
            winsorize(np.array([1.0]), 50.0, 50.0)
        with pytest.raises(ValueError):
            winsorize(np.array([1.0]), -1.0, 99.0)


class TestResample:
    @pytest.fixture
    def frame(self):
        return Frame(
            date_range("2020-01-01", periods=10),
            {"a": np.arange(10.0), "b": np.ones(10)},
        )

    def test_weekly_last(self, frame):
        out = resample_frame(frame, 7, "last")
        assert out.n_rows == 2
        assert out["a"].tolist() == [6.0, 9.0]
        assert out.index.isoformat() == ["2020-01-07", "2020-01-10"]

    def test_mean(self, frame):
        out = resample_frame(frame, 5, "mean")
        assert out["a"].tolist() == [2.0, 7.0]

    def test_sum_min_max_first(self, frame):
        assert resample_frame(frame, 5, "sum")["b"].tolist() == [5.0, 5.0]
        assert resample_frame(frame, 5, "min")["a"].tolist() == [0.0, 5.0]
        assert resample_frame(frame, 5, "max")["a"].tolist() == [4.0, 9.0]
        assert resample_frame(frame, 5, "first")["a"].tolist() == [0.0, 5.0]

    def test_partial_tail_block(self, frame):
        out = resample_frame(frame, 4, "last")
        assert out.n_rows == 3
        assert out["a"].tolist() == [3.0, 7.0, 9.0]

    def test_every_one_identity(self, frame):
        out = resample_frame(frame, 1, "last")
        assert out == frame

    def test_empty_frame(self):
        empty = Frame.empty(date_range("2020-01-01", periods=0))
        assert resample_frame(empty, 7).n_rows == 0

    def test_validation(self, frame):
        with pytest.raises(ValueError):
            resample_frame(frame, 0)
        with pytest.raises(ValueError):
            resample_frame(frame, 7, "median")

    def test_nan_propagates(self):
        f = Frame(
            date_range("2020-01-01", periods=4),
            {"a": [1.0, NAN, 3.0, 4.0]},
        )
        out = resample_frame(f, 2, "mean")
        assert np.isnan(out["a"][0])
        assert out["a"][1] == 3.5
