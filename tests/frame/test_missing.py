"""Unit tests for repro.frame.missing."""

import numpy as np
import pytest

from repro.frame import (
    Frame,
    backward_fill,
    date_range,
    fill_frame,
    forward_fill,
    interpolate_linear,
    leading_nan_count,
    longest_flat_run,
    longest_nan_run,
)

NAN = np.nan


class TestInterpolate:
    def test_bridges_interior_gap(self):
        out = interpolate_linear(np.array([1.0, NAN, 3.0]))
        assert out.tolist() == [1.0, 2.0, 3.0]

    def test_multi_point_gap(self):
        out = interpolate_linear(np.array([0.0, NAN, NAN, NAN, 4.0]))
        assert out.tolist() == [0.0, 1.0, 2.0, 3.0, 4.0]

    def test_keeps_leading_trailing(self):
        out = interpolate_linear(np.array([NAN, 1.0, NAN, 3.0, NAN]))
        assert np.isnan(out[0]) and np.isnan(out[-1])
        assert out[2] == 2.0

    def test_all_nan_unchanged(self):
        out = interpolate_linear(np.array([NAN, NAN]))
        assert np.isnan(out).all()

    def test_no_nan_identity(self):
        src = np.array([5.0, 6.0, 7.0])
        assert interpolate_linear(src).tolist() == src.tolist()

    def test_does_not_mutate_input(self):
        src = np.array([1.0, NAN, 3.0])
        interpolate_linear(src)
        assert np.isnan(src[1])

    def test_empty(self):
        assert interpolate_linear(np.array([])).size == 0


class TestFills:
    def test_forward_fill(self):
        out = forward_fill(np.array([1.0, NAN, NAN, 4.0]))
        assert out.tolist() == [1.0, 1.0, 1.0, 4.0]

    def test_forward_fill_leading_nan_stays(self):
        out = forward_fill(np.array([NAN, 2.0, NAN]))
        assert np.isnan(out[0])
        assert out[2] == 2.0

    def test_forward_fill_limit(self):
        out = forward_fill(np.array([1.0, NAN, NAN, NAN]), limit=2)
        assert out[1] == 1.0 and out[2] == 1.0
        assert np.isnan(out[3])

    def test_backward_fill(self):
        out = backward_fill(np.array([NAN, NAN, 3.0]))
        assert out.tolist() == [3.0, 3.0, 3.0]

    def test_backward_fill_trailing_nan_stays(self):
        out = backward_fill(np.array([1.0, NAN]))
        assert np.isnan(out[1])


class TestRunStatistics:
    def test_longest_nan_run(self):
        arr = np.array([1, NAN, NAN, 3, NAN, NAN, NAN, 7.0])
        assert longest_nan_run(arr) == 3

    def test_longest_nan_run_none(self):
        assert longest_nan_run(np.array([1.0, 2.0])) == 0

    def test_longest_nan_run_all(self):
        assert longest_nan_run(np.array([NAN, NAN])) == 2

    def test_longest_nan_run_empty(self):
        assert longest_nan_run(np.array([])) == 0

    def test_longest_flat_run(self):
        arr = np.array([1, 1, 1, 2, 3, 3.0])
        assert longest_flat_run(arr) == 3

    def test_flat_run_single_value(self):
        assert longest_flat_run(np.array([5.0])) == 1

    def test_flat_run_all_distinct(self):
        assert longest_flat_run(np.array([1.0, 2.0, 3.0])) == 1

    def test_flat_run_nan_breaks(self):
        arr = np.array([1, 1, NAN, 1, 1, 1.0])
        assert longest_flat_run(arr) == 3

    def test_flat_run_tolerance(self):
        arr = np.array([1.0, 1.0001, 1.0002, 2.0])
        assert longest_flat_run(arr, tol=1e-3) == 3
        assert longest_flat_run(arr, tol=0.0) == 1

    def test_flat_run_empty(self):
        assert longest_flat_run(np.array([])) == 0

    def test_leading_nan_count(self):
        assert leading_nan_count(np.array([NAN, NAN, 1.0])) == 2
        assert leading_nan_count(np.array([1.0, NAN])) == 0
        assert leading_nan_count(np.array([NAN, NAN])) == 2


class TestFillFrame:
    def test_interpolate_frame(self):
        idx = date_range("2017-01-01", periods=3)
        f = Frame(idx, {"a": [1.0, NAN, 3.0], "b": [NAN, 2.0, NAN]})
        filled = fill_frame(f)
        assert filled["a"].tolist() == [1.0, 2.0, 3.0]
        assert np.isnan(filled["b"][0]) and np.isnan(filled["b"][2])

    def test_ffill_method(self):
        idx = date_range("2017-01-01", periods=3)
        f = Frame(idx, {"a": [1.0, NAN, NAN]})
        assert fill_frame(f, "ffill")["a"].tolist() == [1.0, 1.0, 1.0]

    def test_bfill_method(self):
        idx = date_range("2017-01-01", periods=3)
        f = Frame(idx, {"a": [NAN, NAN, 3.0]})
        assert fill_frame(f, "bfill")["a"].tolist() == [3.0, 3.0, 3.0]

    def test_unknown_method(self):
        idx = date_range("2017-01-01", periods=1)
        with pytest.raises(ValueError):
            fill_frame(Frame(idx, {"a": [1.0]}), "magic")
