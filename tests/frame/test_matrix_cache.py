"""Allocation-regression tests for Frame's dense-matrix fast paths.

``to_matrix`` must materialise the full-frame matrix exactly once, and
``from_matrix`` must copy its input exactly once — the training /
cache-keying hot paths convert the same frame repeatedly, and these
guarantees are what the compiled-predict benchmark relies on.
"""

import pickle

import numpy as np
import pytest

from repro.frame import Frame, date_range


@pytest.fixture
def frame():
    idx = date_range("2018-01-01", periods=6)
    return Frame(idx, {"a": np.arange(6.0), "b": np.arange(6.0) * 2,
                       "c": np.arange(6.0) * 3})


class TestToMatrixCache:
    def test_full_frame_returns_same_object(self, frame):
        first = frame.to_matrix()
        assert frame.to_matrix() is first
        assert frame.to_matrix(frame.columns) is first

    def test_cached_matrix_is_read_only(self, frame):
        mat = frame.to_matrix()
        assert not mat.flags.writeable
        with pytest.raises(ValueError):
            mat[0, 0] = 99.0

    def test_values_match_columns(self, frame):
        mat = frame.to_matrix()
        for j, name in enumerate(frame.columns):
            assert np.array_equal(mat[:, j], frame[name])

    def test_subset_is_fresh_and_writable(self, frame):
        sub = frame.to_matrix(["b", "a"])
        assert sub.flags.writeable
        assert sub is not frame.to_matrix(["b", "a"])
        assert np.array_equal(sub[:, 0], frame["b"])

    def test_empty_selection(self, frame):
        assert frame.to_matrix([]).shape == (6, 0)

    def test_mutators_return_frames_with_fresh_cache(self, frame):
        cached = frame.to_matrix()
        derived = frame.with_column("d", np.zeros(6))
        mat = derived.to_matrix()
        assert mat is not cached
        assert mat.shape == (6, 4)


class TestFromMatrix:
    def test_columns_share_memory_with_single_copy(self, frame):
        idx = frame.index
        matrix = np.arange(18.0).reshape(6, 3)
        g = Frame.from_matrix(idx, matrix, ["x", "y", "z"])
        cached = g.to_matrix()
        for j, name in enumerate(g.columns):
            assert np.shares_memory(cached, g[name])
            assert np.array_equal(g[name], matrix[:, j])
        # the input itself was copied, not aliased
        assert not np.shares_memory(cached, matrix)

    def test_seeds_to_matrix_cache(self, frame):
        g = Frame.from_matrix(frame.index, np.zeros((6, 2)), ["x", "y"])
        assert g.to_matrix() is g.to_matrix()
        assert not g.to_matrix().flags.writeable

    def test_row_count_mismatch(self, frame):
        with pytest.raises(ValueError, match="rows"):
            Frame.from_matrix(frame.index, np.zeros((4, 2)), ["x", "y"])

    def test_width_mismatch(self, frame):
        with pytest.raises(ValueError, match="width"):
            Frame.from_matrix(frame.index, np.zeros((6, 2)), ["x"])

    def test_duplicate_names(self, frame):
        with pytest.raises(ValueError, match="duplicate"):
            Frame.from_matrix(frame.index, np.zeros((6, 2)), ["x", "x"])

    def test_round_trip_equality(self, frame):
        g = Frame.from_matrix(frame.index, frame.to_matrix(), frame.columns)
        assert g == frame


class TestPickleDropsCache:
    def test_round_trip_preserves_data_not_cache(self, frame):
        frame.to_matrix()  # populate the cache before pickling
        blob = pickle.dumps(frame)
        clone = pickle.loads(blob)
        assert clone == frame
        assert clone._matrix is None
        assert np.array_equal(clone.to_matrix(), frame.to_matrix())

    def test_pickle_size_unaffected_by_cache(self, frame):
        cold = pickle.dumps(frame)
        frame.to_matrix()
        warm = pickle.dumps(frame)
        assert len(warm) == len(cold)


class TestSharedMatrix:
    """``share_matrix`` re-points the cache at a shared segment so a
    pickled frame ships references, and ``to_matrix`` after a
    round-trip attaches the shared copy instead of re-stacking."""

    @pytest.fixture
    def big(self):
        idx = date_range("2000-01-01", periods=9000)
        rows = np.arange(9000, dtype=np.float64)
        return Frame(idx, {"a": rows, "b": rows * 2, "c": rows * 3})

    def test_share_matrix_values_and_read_only(self, big):
        from repro.parallel import SharedArray, SharedDataset, shm_enabled

        if not shm_enabled():
            pytest.skip("shared memory unsupported or disabled")
        reference = np.column_stack([big["a"], big["b"], big["c"]])
        with SharedDataset() as dataset:
            big.share_matrix(dataset)
            mat = big.to_matrix()
            assert isinstance(mat, SharedArray)
            assert np.array_equal(mat, reference)
            for j, name in enumerate(big.columns):
                assert np.shares_memory(mat, big[name])
                assert not big[name].flags.writeable

    def test_round_trip_ships_references_and_reattaches(self, big):
        from repro.parallel import SharedArray, SharedDataset, shm_enabled

        if not shm_enabled():
            pytest.skip("shared memory unsupported or disabled")
        plain_blob = pickle.dumps(big)
        with SharedDataset() as dataset:
            big.share_matrix(dataset)
            shared_blob = pickle.dumps(big)
            # Columns (3 × 72 KB) travel as segment references, not
            # bytes — only the date index still ships by value.
            assert len(shared_blob) < len(plain_blob) - 200_000
            clone = pickle.loads(shared_blob)
            assert clone == big
            assert clone._matrix is None  # cache rebuilds lazily...
            attached = clone.to_matrix()
            assert isinstance(attached, SharedArray)  # ...zero-copy
            assert np.array_equal(attached, big.to_matrix())

    def test_vanished_segment_degrades_to_rebuild(self, big):
        from repro.parallel import SharedDataset, shm_enabled

        if not shm_enabled():
            pytest.skip("shared memory unsupported or disabled")
        reference = big.to_matrix().copy()
        dataset = SharedDataset()
        big.share_matrix(dataset)
        clone = pickle.loads(pickle.dumps(big))
        dataset.close()
        clone._matrix = None  # drop any attached cache
        rebuilt = clone.to_matrix()
        assert np.array_equal(rebuilt, reference)
        assert clone._matrix_src is None  # stale spec was discarded

    def test_small_frame_left_untouched(self, frame):
        from repro.parallel import SharedDataset, shm_enabled

        if not shm_enabled():
            pytest.skip("shared memory unsupported or disabled")
        with SharedDataset() as dataset:
            frame.share_matrix(dataset)
            assert frame._matrix_src is None
            assert len(dataset) == 0
