"""Allocation-regression tests for Frame's dense-matrix fast paths.

``to_matrix`` must materialise the full-frame matrix exactly once, and
``from_matrix`` must copy its input exactly once — the training /
cache-keying hot paths convert the same frame repeatedly, and these
guarantees are what the compiled-predict benchmark relies on.
"""

import pickle

import numpy as np
import pytest

from repro.frame import Frame, date_range


@pytest.fixture
def frame():
    idx = date_range("2018-01-01", periods=6)
    return Frame(idx, {"a": np.arange(6.0), "b": np.arange(6.0) * 2,
                       "c": np.arange(6.0) * 3})


class TestToMatrixCache:
    def test_full_frame_returns_same_object(self, frame):
        first = frame.to_matrix()
        assert frame.to_matrix() is first
        assert frame.to_matrix(frame.columns) is first

    def test_cached_matrix_is_read_only(self, frame):
        mat = frame.to_matrix()
        assert not mat.flags.writeable
        with pytest.raises(ValueError):
            mat[0, 0] = 99.0

    def test_values_match_columns(self, frame):
        mat = frame.to_matrix()
        for j, name in enumerate(frame.columns):
            assert np.array_equal(mat[:, j], frame[name])

    def test_subset_is_fresh_and_writable(self, frame):
        sub = frame.to_matrix(["b", "a"])
        assert sub.flags.writeable
        assert sub is not frame.to_matrix(["b", "a"])
        assert np.array_equal(sub[:, 0], frame["b"])

    def test_empty_selection(self, frame):
        assert frame.to_matrix([]).shape == (6, 0)

    def test_mutators_return_frames_with_fresh_cache(self, frame):
        cached = frame.to_matrix()
        derived = frame.with_column("d", np.zeros(6))
        mat = derived.to_matrix()
        assert mat is not cached
        assert mat.shape == (6, 4)


class TestFromMatrix:
    def test_columns_share_memory_with_single_copy(self, frame):
        idx = frame.index
        matrix = np.arange(18.0).reshape(6, 3)
        g = Frame.from_matrix(idx, matrix, ["x", "y", "z"])
        cached = g.to_matrix()
        for j, name in enumerate(g.columns):
            assert np.shares_memory(cached, g[name])
            assert np.array_equal(g[name], matrix[:, j])
        # the input itself was copied, not aliased
        assert not np.shares_memory(cached, matrix)

    def test_seeds_to_matrix_cache(self, frame):
        g = Frame.from_matrix(frame.index, np.zeros((6, 2)), ["x", "y"])
        assert g.to_matrix() is g.to_matrix()
        assert not g.to_matrix().flags.writeable

    def test_row_count_mismatch(self, frame):
        with pytest.raises(ValueError, match="rows"):
            Frame.from_matrix(frame.index, np.zeros((4, 2)), ["x", "y"])

    def test_width_mismatch(self, frame):
        with pytest.raises(ValueError, match="width"):
            Frame.from_matrix(frame.index, np.zeros((6, 2)), ["x"])

    def test_duplicate_names(self, frame):
        with pytest.raises(ValueError, match="duplicate"):
            Frame.from_matrix(frame.index, np.zeros((6, 2)), ["x", "x"])

    def test_round_trip_equality(self, frame):
        g = Frame.from_matrix(frame.index, frame.to_matrix(), frame.columns)
        assert g == frame


class TestPickleDropsCache:
    def test_round_trip_preserves_data_not_cache(self, frame):
        frame.to_matrix()  # populate the cache before pickling
        blob = pickle.dumps(frame)
        clone = pickle.loads(blob)
        assert clone == frame
        assert clone._matrix is None
        assert np.array_equal(clone.to_matrix(), frame.to_matrix())

    def test_pickle_size_unaffected_by_cache(self, frame):
        cold = pickle.dumps(frame)
        frame.to_matrix()
        warm = pickle.dumps(frame)
        assert len(warm) == len(cold)
