"""Unit tests for repro.frame.ops."""

import numpy as np
import pytest

from repro.frame import (
    Frame,
    concat_columns,
    date_range,
    inner_join,
    log_returns,
    outer_join,
    pct_change,
    rolling_apply,
    rolling_max,
    rolling_mean,
    rolling_min,
    rolling_std,
    rolling_sum,
    shift,
)

NAN = np.nan


@pytest.fixture
def f1():
    return Frame(date_range("2017-01-01", periods=4), {"a": [1.0, 2, 3, 4]})


@pytest.fixture
def f2():
    return Frame(date_range("2017-01-03", periods=4), {"b": [10.0, 20, 30, 40]})


class TestJoins:
    def test_outer_join_union_index(self, f1, f2):
        j = outer_join(f1, f2)
        assert j.n_rows == 6
        assert j.columns == ["a", "b"]
        assert np.isnan(j["b"][0])
        assert np.isnan(j["a"][-1])
        assert j["a"][2] == 3.0 and j["b"][2] == 10.0

    def test_inner_join_intersection(self, f1, f2):
        j = inner_join(f1, f2)
        assert j.n_rows == 2
        assert j["a"].tolist() == [3.0, 4.0]
        assert j["b"].tolist() == [10.0, 20.0]

    def test_join_duplicate_column_rejected(self, f1):
        dup = Frame(date_range("2017-01-01", periods=4), {"a": np.zeros(4)})
        with pytest.raises(ValueError):
            outer_join(f1, dup)

    def test_join_single_frame_identity(self, f1):
        assert outer_join(f1) == f1
        assert inner_join(f1) == f1

    def test_join_no_frames(self):
        with pytest.raises(ValueError):
            outer_join()
        with pytest.raises(ValueError):
            inner_join()

    def test_concat_columns(self, f1):
        other = Frame(f1.index, {"c": np.ones(4)})
        j = concat_columns(f1, other)
        assert j.columns == ["a", "c"]

    def test_concat_columns_index_mismatch(self, f1, f2):
        with pytest.raises(ValueError):
            concat_columns(f1, f2)

    def test_inner_join_disjoint_empty(self, f1):
        far = Frame(date_range("2020-01-01", periods=2), {"z": [1.0, 2.0]})
        assert inner_join(f1, far).n_rows == 0

    def test_outer_join_three_frames(self, f1, f2):
        f3 = Frame(date_range("2017-01-05", periods=1), {"c": [7.0]})
        j = outer_join(f1, f2, f3)
        assert j.columns == ["a", "b", "c"]
        assert j.n_rows == 6


class TestShift:
    def test_positive_shift(self):
        out = shift(np.array([1.0, 2, 3]), 1)
        assert np.isnan(out[0])
        assert out[1:].tolist() == [1.0, 2.0]

    def test_negative_shift(self):
        out = shift(np.array([1.0, 2, 3]), -1)
        assert out[:2].tolist() == [2.0, 3.0]
        assert np.isnan(out[-1])

    def test_zero_shift_copies(self):
        src = np.array([1.0, 2.0])
        out = shift(src, 0)
        assert out.tolist() == src.tolist()
        out[0] = 9
        assert src[0] == 1.0

    def test_oversized_shift_all_nan(self):
        assert np.isnan(shift(np.array([1.0, 2.0]), 5)).all()
        assert np.isnan(shift(np.array([1.0, 2.0]), -5)).all()


class TestReturns:
    def test_pct_change(self):
        out = pct_change(np.array([100.0, 110.0, 99.0]))
        assert np.isnan(out[0])
        assert out[1] == pytest.approx(0.10)
        assert out[2] == pytest.approx(-0.10)

    def test_pct_change_periods(self):
        out = pct_change(np.array([100.0, 0.0, 150.0]), periods=2)
        assert out[2] == pytest.approx(0.5)

    def test_pct_change_zero_base_nan(self):
        out = pct_change(np.array([0.0, 5.0]))
        assert np.isnan(out[1])

    def test_log_returns(self):
        prices = np.array([100.0, 100.0 * np.e])
        out = log_returns(prices)
        assert out[1] == pytest.approx(1.0)

    def test_log_returns_nonpositive_nan(self):
        out = log_returns(np.array([100.0, -5.0, 100.0]))
        assert np.isnan(out[1]) and np.isnan(out[2])


class TestRolling:
    def test_rolling_mean_basic(self):
        out = rolling_mean(np.array([1.0, 2, 3, 4]), 2)
        assert np.isnan(out[0])
        assert out[1:].tolist() == [1.5, 2.5, 3.5]

    def test_rolling_window_one_identity(self):
        src = np.array([3.0, 1.0, 4.0])
        assert rolling_mean(src, 1).tolist() == src.tolist()

    def test_rolling_sum(self):
        out = rolling_sum(np.array([1.0, 1, 1, 1]), 3)
        assert out[2] == 3.0 and out[3] == 3.0

    def test_rolling_min_max(self):
        src = np.array([3.0, 1.0, 4.0, 1.0, 5.0])
        assert rolling_min(src, 3)[2] == 1.0
        assert rolling_max(src, 3)[4] == 5.0

    def test_rolling_std(self):
        out = rolling_std(np.array([1.0, 1.0, 1.0]), 2)
        assert out[1] == 0.0

    def test_rolling_nan_propagates(self):
        out = rolling_mean(np.array([1.0, NAN, 3.0, 4.0]), 2)
        assert np.isnan(out[1]) and np.isnan(out[2])
        assert out[3] == 3.5

    def test_window_longer_than_series(self):
        assert np.isnan(rolling_mean(np.array([1.0, 2.0]), 5)).all()

    def test_bad_window(self):
        with pytest.raises(ValueError):
            rolling_apply(np.array([1.0]), 0, np.mean)

    def test_rolling_apply_custom(self):
        out = rolling_apply(np.array([1.0, 2, 3]), 2, np.median)
        assert out[2] == 2.5


class TestRollingClosedForms:
    """The cumsum closed forms must match rolling_apply exactly enough.

    rolling_apply is the behavioural reference: identical NaN masks
    always, and numerically indistinguishable values (the indicator
    regression suite pins bit-level behaviour downstream).
    """

    @staticmethod
    def _cases():
        rng = np.random.default_rng(2)
        plain = rng.normal(size=300)
        with_nans = plain.copy()
        with_nans[rng.integers(0, 300, 30)] = np.nan
        offset = rng.normal(size=300) + 1e9
        return {"plain": plain, "with_nans": with_nans,
                "large_offset": offset}

    @pytest.mark.parametrize("window", [2, 5, 30])
    def test_mean_matches_reference(self, window):
        for values in self._cases().values():
            ref = rolling_apply(values, window, np.mean)
            fast = rolling_mean(values, window)
            assert np.array_equal(np.isnan(ref), np.isnan(fast))
            np.testing.assert_allclose(fast, ref, rtol=1e-9, equal_nan=True)

    @pytest.mark.parametrize("window", [2, 5, 30])
    def test_sum_matches_reference(self, window):
        for values in self._cases().values():
            ref = rolling_apply(values, window, np.sum)
            fast = rolling_sum(values, window)
            assert np.array_equal(np.isnan(ref), np.isnan(fast))
            np.testing.assert_allclose(fast, ref, rtol=1e-9, equal_nan=True)

    @pytest.mark.parametrize("window", [2, 5, 30])
    def test_std_matches_reference(self, window):
        for values in self._cases().values():
            ref = rolling_apply(values, window, np.std)
            fast = rolling_std(values, window)
            assert np.array_equal(np.isnan(ref), np.isnan(fast))
            np.testing.assert_allclose(
                fast, ref, rtol=1e-7, atol=1e-12, equal_nan=True)

    def test_exact_small_pins(self):
        np.testing.assert_array_equal(
            rolling_mean(np.array([1.0, 2, 3, 4]), 2),
            np.array([NAN, 1.5, 2.5, 3.5]))
        np.testing.assert_array_equal(
            rolling_sum(np.array([1.0, 2, 3, 4]), 3),
            np.array([NAN, NAN, 6.0, 9.0]))

    def test_constant_series_std_is_exactly_zero(self):
        out = rolling_std(np.full(50, 7.25), 10)
        assert (out[9:] == 0.0).all()

    def test_window_one_is_exact_identity(self):
        values = np.random.default_rng(3).normal(size=40) * 1e17
        for func in (rolling_mean, rolling_sum):
            assert np.array_equal(func(values, 1), values)
        assert (rolling_std(values, 1)[~np.isnan(values)] == 0.0).all()

    def test_inf_inputs_fall_back_to_reference(self):
        values = np.array([1.0, np.inf, 3.0, 4.0, 5.0])
        with np.errstate(invalid="ignore"):
            for fast, reducer in ((rolling_mean, np.mean),
                                  (rolling_sum, np.sum),
                                  (rolling_std, np.std)):
                np.testing.assert_array_equal(
                    fast(values, 2), rolling_apply(values, 2, reducer))

    def test_short_input_all_nan(self):
        assert np.isnan(rolling_mean(np.array([1.0, 2.0]), 5)).all()
