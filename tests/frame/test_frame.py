"""Unit tests for repro.frame.frame.Frame."""

import numpy as np
import pytest

from repro.frame import DateIndex, Frame, date_range


@pytest.fixture
def idx():
    return date_range("2017-01-01", periods=5)


@pytest.fixture
def frame(idx):
    return Frame(idx, {"a": np.arange(5.0), "b": np.arange(5.0) * 2})


class TestConstruction:
    def test_shape(self, frame):
        assert frame.shape == (5, 2)
        assert frame.n_rows == 5
        assert frame.n_cols == 2
        assert len(frame) == 5

    def test_columns_order_preserved(self, idx):
        f = Frame(idx, {"z": np.zeros(5), "a": np.zeros(5), "m": np.zeros(5)})
        assert f.columns == ["z", "a", "m"]

    def test_length_mismatch(self, idx):
        with pytest.raises(ValueError):
            Frame(idx, {"a": np.zeros(4)})

    def test_2d_column_rejected(self, idx):
        with pytest.raises(ValueError):
            Frame(idx, {"a": np.zeros((5, 2))})

    def test_non_dateindex_rejected(self):
        with pytest.raises(TypeError):
            Frame([1, 2, 3], {"a": [1, 2, 3]})

    def test_values_coerced_to_float(self, idx):
        f = Frame(idx, {"a": [1, 2, 3, 4, 5]})
        assert f["a"].dtype == np.float64

    def test_column_copied(self, idx):
        src = np.arange(5.0)
        f = Frame(idx, {"a": src})
        src[0] = 99.0
        assert f["a"][0] == 0.0

    def test_column_readonly(self, frame):
        with pytest.raises(ValueError):
            frame["a"][0] = 99.0

    def test_from_matrix(self, idx):
        m = np.arange(10.0).reshape(5, 2)
        f = Frame.from_matrix(idx, m, ["x", "y"])
        assert f["x"].tolist() == [0, 2, 4, 6, 8]
        assert f["y"].tolist() == [1, 3, 5, 7, 9]

    def test_from_matrix_width_mismatch(self, idx):
        with pytest.raises(ValueError):
            Frame.from_matrix(idx, np.zeros((5, 2)), ["x"])

    def test_empty(self, idx):
        f = Frame.empty(idx)
        assert f.shape == (5, 0)
        assert f.to_matrix().shape == (5, 0)


class TestColumnOps:
    def test_getitem(self, frame):
        assert frame["b"].tolist() == [0, 2, 4, 6, 8]

    def test_getitem_missing(self, frame):
        with pytest.raises(KeyError):
            frame["zzz"]

    def test_contains(self, frame):
        assert "a" in frame
        assert "c" not in frame

    def test_get_default(self, frame):
        assert frame.get("zzz") is None

    def test_select_reorders(self, frame):
        sub = frame.select(["b", "a"])
        assert sub.columns == ["b", "a"]

    def test_select_missing(self, frame):
        with pytest.raises(KeyError):
            frame.select(["a", "nope"])

    def test_drop(self, frame):
        assert frame.drop(["a"]).columns == ["b"]

    def test_drop_missing(self, frame):
        with pytest.raises(KeyError):
            frame.drop(["nope"])

    def test_rename(self, frame):
        f = frame.rename({"a": "alpha"})
        assert f.columns == ["alpha", "b"]
        assert f["alpha"].tolist() == frame["a"].tolist()

    def test_rename_collision(self, frame):
        with pytest.raises(ValueError):
            frame.rename({"a": "b"})

    def test_with_column_add(self, frame, idx):
        f = frame.with_column("c", np.ones(5))
        assert f.columns == ["a", "b", "c"]
        assert frame.n_cols == 2  # original untouched

    def test_with_column_replace(self, frame):
        f = frame.with_column("a", np.ones(5))
        assert f["a"].tolist() == [1] * 5
        assert f.columns == ["a", "b"]

    def test_with_prefix(self, frame):
        f = frame.with_prefix("usdc_")
        assert f.columns == ["usdc_a", "usdc_b"]


class TestRowOps:
    def test_iloc_slice(self, frame):
        sub = frame.iloc(slice(1, 3))
        assert sub.n_rows == 2
        assert sub["a"].tolist() == [1, 2]
        assert sub.index.isoformat() == ["2017-01-02", "2017-01-03"]

    def test_iloc_bool_mask(self, frame):
        sub = frame.iloc(frame["a"] > 2)
        assert sub["a"].tolist() == [3, 4]

    def test_iloc_int_array(self, frame):
        sub = frame.iloc(np.array([0, 4]))
        assert sub["a"].tolist() == [0, 4]

    def test_loc_range(self, frame):
        sub = frame.loc_range("2017-01-02", "2017-01-04")
        assert sub["a"].tolist() == [1, 2, 3]

    def test_loc_range_open_ended(self, frame):
        assert frame.loc_range(start="2017-01-04")["a"].tolist() == [3, 4]
        assert frame.loc_range(end="2017-01-02")["a"].tolist() == [0, 1]

    def test_head_tail(self, frame):
        assert frame.head(2)["a"].tolist() == [0, 1]
        assert frame.tail(2)["a"].tolist() == [3, 4]
        assert frame.tail(99).n_rows == 5


class TestReindex:
    def test_reindex_superset(self, frame):
        wider = date_range("2016-12-30", periods=9)
        f = frame.reindex(wider)
        assert f.n_rows == 9
        assert np.isnan(f["a"][0]) and np.isnan(f["a"][1])
        assert f["a"][2] == 0.0

    def test_reindex_subset(self, frame):
        narrow = date_range("2017-01-02", periods=2)
        f = frame.reindex(narrow)
        assert f["a"].tolist() == [1, 2]

    def test_reindex_disjoint(self, frame):
        other = date_range("2020-01-01", periods=3)
        f = frame.reindex(other)
        assert np.isnan(f["a"]).all()


class TestConversionAndStats:
    def test_to_matrix(self, frame):
        m = frame.to_matrix()
        assert m.shape == (5, 2)
        assert m[:, 1].tolist() == [0, 2, 4, 6, 8]

    def test_to_matrix_subset(self, frame):
        m = frame.to_matrix(["b"])
        assert m.shape == (5, 1)

    def test_to_dict(self, frame):
        d = frame.to_dict()
        assert set(d) == {"a", "b"}

    def test_map_columns(self, frame):
        f = frame.map_columns(lambda col: col + 1)
        assert f["a"].tolist() == [1, 2, 3, 4, 5]

    def test_nan_fraction(self, idx):
        f = Frame(idx, {"a": [1, np.nan, 3, np.nan, 5]})
        assert f.nan_fraction()["a"] == pytest.approx(0.4)

    def test_summary(self, frame):
        s = frame.summary()
        assert s["a"]["mean"] == pytest.approx(2.0)
        assert s["b"]["max"] == pytest.approx(8.0)

    def test_summary_all_nan(self, idx):
        f = Frame(idx, {"a": [np.nan] * 5})
        assert np.isnan(f.summary()["a"]["mean"])

    def test_equality(self, frame, idx):
        same = Frame(idx, {"a": np.arange(5.0), "b": np.arange(5.0) * 2})
        assert frame == same
        assert frame != same.rename({"a": "x"})
        assert frame != same.with_column("a", np.zeros(5))

    def test_equality_with_nans(self, idx):
        a = Frame(idx, {"a": [1, np.nan, 3, 4, 5]})
        b = Frame(idx, {"a": [1, np.nan, 3, 4, 5]})
        assert a == b
