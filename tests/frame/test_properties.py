"""Property-based tests (hypothesis) for the frame substrate."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.frame import (
    DateIndex,
    Frame,
    backward_fill,
    date_range,
    forward_fill,
    inner_join,
    interpolate_linear,
    longest_nan_run,
    outer_join,
    shift,
)

finite_floats = st.floats(
    allow_nan=False, allow_infinity=False, min_value=-1e12, max_value=1e12
)
maybe_nan_floats = st.one_of(finite_floats, st.just(float("nan")))


def series(min_size=0, max_size=60, allow_nan=True):
    elems = maybe_nan_floats if allow_nan else finite_floats
    return arrays(
        np.float64,
        st.integers(min_value=min_size, max_value=max_size),
        elements=elems,
    )


@st.composite
def index_pair(draw):
    start_a = draw(st.integers(min_value=700000, max_value=700100))
    start_b = draw(st.integers(min_value=700000, max_value=700100))
    len_a = draw(st.integers(min_value=0, max_value=40))
    len_b = draw(st.integers(min_value=0, max_value=40))
    return (
        date_range(start_a, periods=len_a),
        date_range(start_b, periods=len_b),
    )


class TestIndexProperties:
    @given(index_pair())
    def test_union_contains_both(self, pair):
        a, b = pair
        u = a.union(b)
        assert len(u) >= max(len(a), len(b))
        for d in list(a) + list(b):
            assert d in u

    @given(index_pair())
    def test_intersection_subset_of_both(self, pair):
        a, b = pair
        i = a.intersection(b)
        for d in i:
            assert d in a and d in b

    @given(index_pair())
    def test_inclusion_exclusion(self, pair):
        a, b = pair
        assert len(a.union(b)) + len(a.intersection(b)) == len(a) + len(b)

    @given(index_pair())
    def test_indexer_positions_are_correct(self, pair):
        a, b = pair
        pos = a.indexer(b)
        for j, p in enumerate(pos):
            if p >= 0:
                assert a[int(p)] == b[j]
            else:
                assert b[j] not in a


class TestFillProperties:
    @given(series())
    def test_interpolate_never_increases_nans(self, values):
        before = int(np.isnan(values).sum())
        after = int(np.isnan(interpolate_linear(values)).sum())
        assert after <= before

    @given(series())
    def test_interpolate_preserves_observed(self, values):
        out = interpolate_linear(values)
        observed = ~np.isnan(values)
        assert np.array_equal(out[observed], values[observed])

    @given(series())
    def test_interpolate_bounds(self, values):
        """Linear interpolation stays within [min, max] of observations."""
        out = interpolate_linear(values)
        obs = values[~np.isnan(values)]
        if obs.size:
            filled = out[~np.isnan(out)]
            assert filled.min() >= obs.min() - 1e-9
            assert filled.max() <= obs.max() + 1e-9

    @given(series())
    def test_ffill_idempotent(self, values):
        once = forward_fill(values)
        twice = forward_fill(once)
        assert np.array_equal(once, twice, equal_nan=True)

    @given(series())
    def test_bfill_is_reversed_ffill(self, values):
        assert np.array_equal(
            backward_fill(values),
            forward_fill(values[::-1])[::-1],
            equal_nan=True,
        )

    @given(series())
    def test_nan_run_bounded_by_total_nans(self, values):
        assert longest_nan_run(values) <= int(np.isnan(values).sum())


class TestShiftProperties:
    @given(series(allow_nan=False), st.integers(min_value=-5, max_value=5))
    def test_shift_roundtrip_preserves_overlap(self, values, k):
        out = shift(shift(values, k), -k)
        n = values.size
        if n and abs(k) < n:
            core = slice(max(0, -k) + max(0, k), n - abs(k) + min(abs(k), n))
            # overlap region: positions that survived both shifts
            survived = ~np.isnan(out)
            assert np.array_equal(out[survived], values[survived])

    @given(series(), st.integers(min_value=-5, max_value=5))
    def test_shift_length_invariant(self, values, k):
        assert shift(values, k).size == values.size


class TestJoinProperties:
    @settings(max_examples=50)
    @given(index_pair(), st.integers(min_value=0, max_value=2**32 - 1))
    def test_outer_join_preserves_values(self, pair, seed):
        a_idx, b_idx = pair
        rng = np.random.default_rng(seed)
        fa = Frame(a_idx, {"a": rng.normal(size=len(a_idx))})
        fb = Frame(b_idx, {"b": rng.normal(size=len(b_idx))})
        j = outer_join(fa, fb)
        assert len(j.index) == len(a_idx.union(b_idx))
        for i, d in enumerate(a_idx):
            assert j["a"][j.index.position(d)] == fa["a"][i]

    @settings(max_examples=50)
    @given(index_pair())
    def test_inner_join_index_is_intersection(self, pair):
        a_idx, b_idx = pair
        fa = Frame(a_idx, {"a": np.zeros(len(a_idx))})
        fb = Frame(b_idx, {"b": np.ones(len(b_idx))})
        j = inner_join(fa, fb)
        assert j.index == a_idx.intersection(b_idx)
        assert not any(np.isnan(j.to_matrix()).ravel())


class TestFrameRoundtrip:
    @settings(max_examples=30)
    @given(st.integers(min_value=0, max_value=30),
           st.integers(min_value=0, max_value=2**32 - 1))
    def test_matrix_roundtrip(self, n, seed):
        idx = date_range("2017-01-01", periods=n)
        rng = np.random.default_rng(seed)
        m = rng.normal(size=(n, 3))
        f = Frame.from_matrix(idx, m, ["x", "y", "z"])
        assert np.allclose(f.to_matrix(), m)

    @settings(max_examples=30)
    @given(st.integers(min_value=1, max_value=30))
    def test_reindex_identity(self, n):
        idx = date_range("2017-01-01", periods=n)
        f = Frame(idx, {"a": np.arange(float(n))})
        assert f.reindex(idx) == f
