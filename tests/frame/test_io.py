"""Unit tests for repro.frame.io CSV round-trip."""

import numpy as np
import pytest

from repro.frame import Frame, date_range, read_csv, write_csv


@pytest.fixture
def frame():
    idx = date_range("2019-01-01", periods=4)
    return Frame(
        idx,
        {
            "price": [100.0, 101.5, np.nan, 103.25],
            "volume": [1e9, 2e9, 3e9, np.nan],
        },
    )


class TestRoundTrip:
    def test_identity(self, frame, tmp_path):
        path = tmp_path / "data.csv"
        write_csv(frame, path)
        again = read_csv(path)
        assert again == frame

    def test_preserves_exact_floats(self, tmp_path):
        idx = date_range("2019-01-01", periods=1)
        f = Frame(idx, {"x": [0.1 + 0.2]})
        path = tmp_path / "f.csv"
        write_csv(f, path)
        assert read_csv(path)["x"][0] == 0.1 + 0.2

    def test_nan_round_trips_as_empty_field(self, frame, tmp_path):
        path = tmp_path / "data.csv"
        write_csv(frame, path)
        text = path.read_text()
        assert "nan" not in text.lower().replace("nan,", "")
        again = read_csv(path)
        assert np.isnan(again["price"][2])

    def test_header(self, frame, tmp_path):
        path = tmp_path / "data.csv"
        write_csv(frame, path)
        first = path.read_text().splitlines()[0]
        assert first == "date,price,volume"

    def test_empty_frame(self, tmp_path):
        f = Frame.empty(date_range("2019-01-01", periods=0))
        path = tmp_path / "empty.csv"
        write_csv(f, path)
        again = read_csv(path)
        assert again.shape == (0, 0)

    def test_no_rows_with_columns(self, tmp_path):
        f = Frame(date_range("2019-01-01", periods=0), {"a": []})
        path = tmp_path / "norows.csv"
        write_csv(f, path)
        again = read_csv(path)
        assert again.columns == ["a"]
        assert again.n_rows == 0


class TestErrors:
    def test_empty_file(self, tmp_path):
        path = tmp_path / "e.csv"
        path.write_text("")
        with pytest.raises(ValueError):
            read_csv(path)

    def test_bad_header(self, tmp_path):
        path = tmp_path / "b.csv"
        path.write_text("foo,bar\n1,2\n")
        with pytest.raises(ValueError):
            read_csv(path)

    def test_ragged_row(self, tmp_path):
        path = tmp_path / "r.csv"
        path.write_text("date,a\n2019-01-01,1.0,extra\n")
        with pytest.raises(ValueError):
            read_csv(path)
