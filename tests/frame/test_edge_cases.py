"""Edge-case coverage for the frame substrate beyond the main suites."""

import datetime as dt

import numpy as np
import pytest

from repro.frame import (
    DateIndex,
    Frame,
    date_range,
    inner_join,
    outer_join,
    rolling_mean,
    shift,
)


class TestDateIndexEdges:
    def test_contains_datetime_object(self):
        idx = date_range("2020-01-01", periods=3)
        assert dt.datetime(2020, 1, 2, 15, 30) in idx

    def test_single_day_index(self):
        idx = DateIndex(["2020-02-29"])
        assert idx.is_contiguous
        assert idx.position("2020-02-29") == 0
        assert idx[0] == dt.date(2020, 2, 29)

    def test_empty_index_set_ops(self):
        empty = date_range("2020-01-01", periods=0)
        full = date_range("2020-01-01", periods=3)
        assert empty.union(full) == full
        assert empty.intersection(full) == empty
        assert full.difference(empty) == full

    def test_getitem_fancy_list(self):
        idx = date_range("2020-01-01", periods=5)
        sub = idx[[0, 2, 4]]
        assert isinstance(sub, DateIndex)
        assert len(sub) == 3

    def test_slice_positions_empty_range(self):
        idx = date_range("2020-01-01", periods=5)
        s = idx.slice_positions("2020-01-04", "2020-01-02")
        assert s.stop <= s.start  # empty slice


class TestFrameEdges:
    def test_empty_frame_summary(self):
        f = Frame.empty(date_range("2020-01-01", periods=0))
        assert f.summary() == {}
        assert f.nan_fraction() == {}

    def test_zero_row_column_ops(self):
        f = Frame(date_range("2020-01-01", periods=0), {"a": []})
        assert f.head()["a"].size == 0
        assert f.to_matrix().shape == (0, 1)
        assert np.isnan(f.summary()["a"]["mean"])

    def test_join_empty_with_full(self):
        empty = Frame(date_range("2020-01-01", periods=0), {"a": []})
        full = Frame(date_range("2020-01-01", periods=2), {"b": [1.0, 2.0]})
        joined = outer_join(empty, full)
        assert joined.n_rows == 2
        assert np.isnan(joined["a"]).all()
        assert inner_join(empty, full).n_rows == 0

    def test_single_row_frame_rolling(self):
        out = rolling_mean(np.array([5.0]), 1)
        assert out.tolist() == [5.0]

    def test_shift_empty(self):
        assert shift(np.array([]), 3).size == 0

    def test_with_column_length_mismatch(self):
        f = Frame(date_range("2020-01-01", periods=2), {"a": [1.0, 2.0]})
        with pytest.raises(ValueError):
            f.with_column("b", [1.0])

    def test_select_empty_list(self):
        f = Frame(date_range("2020-01-01", periods=2), {"a": [1.0, 2.0]})
        sub = f.select([])
        assert sub.n_cols == 0
        assert sub.n_rows == 2

    def test_iloc_empty_mask(self):
        f = Frame(date_range("2020-01-01", periods=3), {"a": [1.0, 2, 3]})
        sub = f.iloc(np.zeros(3, dtype=bool))
        assert sub.n_rows == 0

    def test_repr_mentions_shape(self):
        f = Frame(date_range("2020-01-01", periods=3), {"a": [1.0, 2, 3]})
        assert "n_rows=3" in repr(f)
        assert "n_cols=1" in repr(f)
