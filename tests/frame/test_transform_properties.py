"""Property-based tests for repro.frame.transform."""

import numpy as np
from hypothesis import assume, given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.frame import Frame, date_range, resample_frame, winsorize, zscore

finite = st.floats(allow_nan=False, allow_infinity=False,
                   min_value=-1e9, max_value=1e9)


def series(min_size=1, max_size=60):
    return arrays(np.float64,
                  st.integers(min_value=min_size, max_value=max_size),
                  elements=finite)


class TestZscoreProperties:
    @settings(max_examples=60, deadline=None)
    @given(series(min_size=2))
    def test_mean_zero(self, values):
        z = zscore(values)
        assert abs(np.nanmean(z)) < 1e-6

    @settings(max_examples=60, deadline=None)
    @given(series(min_size=2), st.floats(min_value=0.1, max_value=10),
           st.floats(min_value=-100, max_value=100))
    def test_affine_invariance(self, values, scale, offset):
        # near-constant arrays amplify float noise unboundedly — the
        # property only holds for series with genuine spread
        assume(values.std() > 1e-6 * (1.0 + np.abs(values).max()))
        a = zscore(values)
        b = zscore(values * scale + offset)
        assert np.allclose(a, b, atol=1e-5)

    @settings(max_examples=60, deadline=None)
    @given(series())
    def test_idempotent_up_to_tolerance(self, values):
        assume(values.size < 2
               or values.std() > 1e-6 * (1.0 + np.abs(values).max())
               or values.std() == 0.0)
        once = zscore(values)
        twice = zscore(once)
        assert np.allclose(once, twice, atol=1e-6)


class TestWinsorizeProperties:
    @settings(max_examples=60, deadline=None)
    @given(series(), st.floats(min_value=0, max_value=20),
           st.floats(min_value=80, max_value=100))
    def test_output_within_clip_bounds(self, values, lo, hi):
        if not lo < hi:
            return
        out = winsorize(values, lo, hi)
        assert np.nanmin(out) >= np.percentile(values, lo) - 1e-9
        assert np.nanmax(out) <= np.percentile(values, hi) + 1e-9

    @settings(max_examples=60, deadline=None)
    @given(series())
    def test_full_range_is_identity(self, values):
        out = winsorize(values, 0.0, 100.0)
        assert np.array_equal(out, values)

    @settings(max_examples=60, deadline=None)
    @given(series())
    def test_idempotent(self, values):
        once = winsorize(values, 5.0, 95.0)
        twice = winsorize(once, 0.0, 100.0)
        assert np.array_equal(once, twice)


class TestResampleProperties:
    @settings(max_examples=60, deadline=None)
    @given(series(min_size=1, max_size=50),
           st.integers(min_value=1, max_value=10))
    def test_sum_preserved_by_sum_agg(self, values, every):
        frame = Frame(date_range("2020-01-01", periods=values.size),
                      {"x": values})
        out = resample_frame(frame, every, "sum")
        assert np.isclose(out["x"].sum(), values.sum(), rtol=1e-9)

    @settings(max_examples=60, deadline=None)
    @given(series(min_size=1, max_size=50),
           st.integers(min_value=1, max_value=10))
    def test_block_count(self, values, every):
        frame = Frame(date_range("2020-01-01", periods=values.size),
                      {"x": values})
        out = resample_frame(frame, every, "last")
        assert out.n_rows == int(np.ceil(values.size / every))

    @settings(max_examples=60, deadline=None)
    @given(series(min_size=1, max_size=50),
           st.integers(min_value=1, max_value=10))
    def test_min_max_bracket_mean(self, values, every):
        frame = Frame(date_range("2020-01-01", periods=values.size),
                      {"x": values})
        lo = resample_frame(frame, every, "min")["x"]
        hi = resample_frame(frame, every, "max")["x"]
        mid = resample_frame(frame, every, "mean")["x"]
        tol = 1e-9 * (1.0 + np.abs(values).max())
        assert (lo <= mid + tol).all()
        assert (mid <= hi + tol).all()

    @settings(max_examples=60, deadline=None)
    @given(series(min_size=1, max_size=50),
           st.integers(min_value=1, max_value=10))
    def test_last_dates_are_block_ends(self, values, every):
        frame = Frame(date_range("2020-01-01", periods=values.size),
                      {"x": values})
        out = resample_frame(frame, every, "last")
        # final stamped date is always the original frame's last date
        assert out.index[-1] == frame.index[-1]
