"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_simulate_args(self, tmp_path):
        args = build_parser().parse_args(
            ["simulate", "--out", str(tmp_path), "--seed", "5"]
        )
        assert args.command == "simulate"
        assert args.seed == 5
        assert not args.include_eth

    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.preset == "fast"
        assert args.report is None
        assert args.markdown is None

    def test_run_markdown_arg(self, tmp_path):
        args = build_parser().parse_args(
            ["run", "--markdown", str(tmp_path / "r.md")]
        )
        assert args.markdown.name == "r.md"

    def test_bad_preset_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--preset", "huge"])

    def test_run_observability_flags(self, tmp_path):
        args = build_parser().parse_args(
            ["run", "--log-level", "debug", "--log-json",
             "--trace", str(tmp_path / "t.jsonl")]
        )
        assert args.log_level == "debug"
        assert args.log_json
        assert args.trace.name == "t.jsonl"

    def test_run_observability_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.log_level is None
        assert not args.log_json
        assert args.trace is None

    def test_bad_log_level_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--log-level", "loud"])

    def test_trace_summary_args(self, tmp_path):
        args = build_parser().parse_args(
            ["trace-summary", str(tmp_path / "t.jsonl"), "--top", "3"]
        )
        assert args.command == "trace-summary"
        assert args.top == 3


class TestSimulateCommand:
    def test_writes_csv_bundle(self, tmp_path, capsys, monkeypatch):
        self._patch_small(monkeypatch)
        code = main(["simulate", "--out", str(tmp_path), "--seed", "3"])
        assert code == 0
        assert (tmp_path / "features.csv").exists()
        assert (tmp_path / "crypto100.csv").exists()
        assert (tmp_path / "categories.csv").exists()
        out = capsys.readouterr().out
        assert "wrote" in out

    def test_roundtrip_readable(self, tmp_path, monkeypatch):
        self._patch_small(monkeypatch)
        main(["simulate", "--out", str(tmp_path)])
        from repro.frame import read_csv

        features = read_csv(tmp_path / "features.csv")
        assert features.n_cols > 100
        index = read_csv(tmp_path / "crypto100.csv")
        assert "crypto100" in index.columns

    def test_include_eth_flag(self, tmp_path, monkeypatch):
        self._patch_small(monkeypatch)
        main(["simulate", "--out", str(tmp_path), "--include-eth"])
        text = (tmp_path / "categories.csv").read_text()
        assert "onchain_eth" in text

    def test_market_preset_flag(self, tmp_path, monkeypatch):
        self._patch_small(monkeypatch)
        code = main(["simulate", "--out", str(tmp_path),
                     "--market", "short_history"])
        assert code == 0
        from repro.frame import read_csv

        features = read_csv(tmp_path / "features.csv")
        # the short-history preset starts in 2020
        assert features.index[0].year >= 2020

    def test_bad_market_rejected(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["simulate", "--out", str(tmp_path),
                  "--market", "moonshot"])

    @staticmethod
    def _patch_small(monkeypatch):
        """Shrink the simulation window so CLI tests stay fast.

        The simulate command goes through the market presets, so the
        patch wraps each preset factory with a smaller window/universe;
        the index command constructs SimulationConfig directly, so that
        name is wrapped too.
        """
        import dataclasses

        import repro.cli as cli

        original_presets = dict(cli.MARKET_PRESETS)

        def shrink(config):
            start = max(config.start, "2018-01-01")
            return dataclasses.replace(
                config, start=start, end="2020-06-30", n_assets=105,
            )

        patched = {
            name: (lambda seed=20240701, _f=factory: shrink(_f(seed=seed)))
            for name, factory in original_presets.items()
        }
        monkeypatch.setattr(cli, "MARKET_PRESETS", patched)

        original_config = cli.SimulationConfig

        def small(*args, **kwargs):
            kwargs.setdefault("start", "2018-01-01")
            kwargs.setdefault("end", "2019-06-30")
            kwargs.setdefault("n_assets", 105)
            return original_config(*args, **kwargs)

        monkeypatch.setattr(cli, "SimulationConfig", small)


class TestTraceSummaryCommand:
    @staticmethod
    def _write_trace(path):
        from repro.obs import Tracer, write_jsonl

        class Clock:
            def __init__(self):
                self.now = 0.0

            def __call__(self):
                self.now += 0.5
                return self.now

        tracer = Tracer(clock=Clock())
        with tracer.span("experiment.run"):
            with tracer.span("fra.reduce", scenario="2017_7"):
                with tracer.span("fra.iteration", iteration=0):
                    pass
            with tracer.span("improvement.scenario", scenario="2017_7"):
                pass
        return write_jsonl(tracer.spans, path)

    def test_renders_table_and_slowest(self, tmp_path, capsys):
        path = self._write_trace(tmp_path / "t.jsonl")
        code = main(["trace-summary", str(path), "--top", "2"])
        assert code == 0
        out = capsys.readouterr().out
        assert "experiment.run" in out
        assert "fra.iteration" in out
        assert "slowest 2 spans" in out
        assert "scenario=2017_7" in out

    def test_empty_trace_fails(self, tmp_path, capsys):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        code = main(["trace-summary", str(path)])
        assert code == 1
        assert "no spans" in capsys.readouterr().out

    def test_missing_file_fails_cleanly(self, tmp_path, capsys):
        code = main(["trace-summary", str(tmp_path / "nope.jsonl")])
        assert code == 1
        assert "not found" in capsys.readouterr().out

    def test_corrupt_file_fails_cleanly(self, tmp_path, capsys):
        path = tmp_path / "garbage.jsonl"
        path.write_text("not json\n")
        code = main(["trace-summary", str(path)])
        assert code == 1
        assert "not a span trace" in capsys.readouterr().out


class TestIndexCommand:
    def test_prints_analysis(self, capsys, monkeypatch):
        TestSimulateCommand._patch_small(monkeypatch)
        code = main(["index", "--seed", "3"])
        assert code == 0
        out = capsys.readouterr().out
        assert "best scaling power" in out
        assert "top-100 market share" in out
