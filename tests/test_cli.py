"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_simulate_args(self, tmp_path):
        args = build_parser().parse_args(
            ["simulate", "--out", str(tmp_path), "--seed", "5"]
        )
        assert args.command == "simulate"
        assert args.seed == 5
        assert not args.include_eth

    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.preset == "fast"
        assert args.report is None
        assert args.markdown is None

    def test_run_markdown_arg(self, tmp_path):
        args = build_parser().parse_args(
            ["run", "--markdown", str(tmp_path / "r.md")]
        )
        assert args.markdown.name == "r.md"

    def test_bad_preset_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--preset", "huge"])

    def test_run_observability_flags(self, tmp_path):
        args = build_parser().parse_args(
            ["run", "--log-level", "debug", "--log-json",
             "--trace", str(tmp_path / "t.jsonl")]
        )
        assert args.log_level == "debug"
        assert args.log_json
        assert args.trace.name == "t.jsonl"

    def test_run_observability_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.log_level is None
        assert not args.log_json
        assert args.trace is None

    def test_bad_log_level_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--log-level", "loud"])

    def test_trace_summary_args(self, tmp_path):
        args = build_parser().parse_args(
            ["trace-summary", str(tmp_path / "t.jsonl"), "--top", "3"]
        )
        assert args.command == "trace-summary"
        assert args.top == 3

    def test_run_resilience_flags(self, tmp_path):
        args = build_parser().parse_args(
            ["run", "--checkpoint-dir", str(tmp_path / "ckpt"),
             "--keep-going", "--fault-plan", str(tmp_path / "p.json"),
             "--degradation", "fill"]
        )
        assert args.checkpoint_dir.name == "ckpt"
        assert args.keep_going
        assert args.fault_plan.name == "p.json"
        assert args.degradation == "fill"

    def test_run_resilience_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.checkpoint_dir is None
        assert args.resume is None
        assert not args.keep_going
        assert args.fault_plan is None
        assert args.degradation is None

    def test_bad_degradation_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--degradation", "hope"])

    def test_chaos_args(self, tmp_path):
        args = build_parser().parse_args(
            ["chaos", "--chaos-seed", "9", "--save-plan",
             str(tmp_path / "p.json"), "--degradation", "drop-category"]
        )
        assert args.command == "chaos"
        assert args.chaos_seed == 9
        assert args.save_plan.name == "p.json"
        assert args.degradation == "drop-category"

    def test_chaos_defaults(self):
        args = build_parser().parse_args(["chaos"])
        assert args.preset == "fast"
        assert args.degradation == "fill"
        assert args.plan is None


class TestSimulateCommand:
    def test_writes_csv_bundle(self, tmp_path, capsys, monkeypatch):
        self._patch_small(monkeypatch)
        code = main(["simulate", "--out", str(tmp_path), "--seed", "3"])
        assert code == 0
        assert (tmp_path / "features.csv").exists()
        assert (tmp_path / "crypto100.csv").exists()
        assert (tmp_path / "categories.csv").exists()
        out = capsys.readouterr().out
        assert "wrote" in out

    def test_roundtrip_readable(self, tmp_path, monkeypatch):
        self._patch_small(monkeypatch)
        main(["simulate", "--out", str(tmp_path)])
        from repro.frame import read_csv

        features = read_csv(tmp_path / "features.csv")
        assert features.n_cols > 100
        index = read_csv(tmp_path / "crypto100.csv")
        assert "crypto100" in index.columns

    def test_include_eth_flag(self, tmp_path, monkeypatch):
        self._patch_small(monkeypatch)
        main(["simulate", "--out", str(tmp_path), "--include-eth"])
        text = (tmp_path / "categories.csv").read_text()
        assert "onchain_eth" in text

    def test_market_preset_flag(self, tmp_path, monkeypatch):
        self._patch_small(monkeypatch)
        code = main(["simulate", "--out", str(tmp_path),
                     "--market", "short_history"])
        assert code == 0
        from repro.frame import read_csv

        features = read_csv(tmp_path / "features.csv")
        # the short-history preset starts in 2020
        assert features.index[0].year >= 2020

    def test_bad_market_rejected(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["simulate", "--out", str(tmp_path),
                  "--market", "moonshot"])

    @staticmethod
    def _patch_small(monkeypatch):
        """Shrink the simulation window so CLI tests stay fast.

        The simulate command goes through the market presets, so the
        patch wraps each preset factory with a smaller window/universe;
        the index command constructs SimulationConfig directly, so that
        name is wrapped too.
        """
        import dataclasses

        import repro.cli as cli

        original_presets = dict(cli.MARKET_PRESETS)

        def shrink(config):
            start = max(config.start, "2018-01-01")
            return dataclasses.replace(
                config, start=start, end="2020-06-30", n_assets=105,
            )

        patched = {
            name: (lambda seed=20240701, _f=factory: shrink(_f(seed=seed)))
            for name, factory in original_presets.items()
        }
        monkeypatch.setattr(cli, "MARKET_PRESETS", patched)

        original_config = cli.SimulationConfig

        def small(*args, **kwargs):
            kwargs.setdefault("start", "2018-01-01")
            kwargs.setdefault("end", "2019-06-30")
            kwargs.setdefault("n_assets", 105)
            return original_config(*args, **kwargs)

        monkeypatch.setattr(cli, "SimulationConfig", small)


class TestTraceSummaryCommand:
    @staticmethod
    def _write_trace(path):
        from repro.obs import Tracer, write_jsonl

        class Clock:
            def __init__(self):
                self.now = 0.0

            def __call__(self):
                self.now += 0.5
                return self.now

        tracer = Tracer(clock=Clock())
        with tracer.span("experiment.run"):
            with tracer.span("fra.reduce", scenario="2017_7"):
                with tracer.span("fra.iteration", iteration=0):
                    pass
            with tracer.span("improvement.scenario", scenario="2017_7"):
                pass
        return write_jsonl(tracer.spans, path)

    def test_renders_table_and_slowest(self, tmp_path, capsys):
        path = self._write_trace(tmp_path / "t.jsonl")
        code = main(["trace-summary", str(path), "--top", "2"])
        assert code == 0
        out = capsys.readouterr().out
        assert "experiment.run" in out
        assert "fra.iteration" in out
        assert "slowest 2 spans" in out
        assert "scenario=2017_7" in out

    def test_empty_trace_fails(self, tmp_path, capsys):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        code = main(["trace-summary", str(path)])
        assert code == 1
        assert "no spans" in capsys.readouterr().out

    def test_missing_file_fails_cleanly(self, tmp_path, capsys):
        code = main(["trace-summary", str(tmp_path / "nope.jsonl")])
        assert code == 1
        assert "not found" in capsys.readouterr().out

    def test_corrupt_file_fails_cleanly(self, tmp_path, capsys):
        path = tmp_path / "garbage.jsonl"
        path.write_text("not json\n")
        code = main(["trace-summary", str(path)])
        assert code == 1
        assert "not a span trace" in capsys.readouterr().out


class _Captured(Exception):
    """Sentinel raised by stubs after recording the call — lets the
    tests check how ``main`` wires flags into ``run_experiment`` without
    paying for (or rendering) a real run."""


class TestRunResilienceWiring:
    @staticmethod
    def _capture(monkeypatch, store):
        import repro.cli as cli

        def stub(config, checkpoint_dir=None, resume=False):
            store.update(config=config, checkpoint_dir=checkpoint_dir,
                         resume=resume)
            raise _Captured

        monkeypatch.setattr(cli, "run_experiment", stub)

    def test_flags_reach_run_experiment(self, tmp_path, monkeypatch):
        from repro.resilience import random_fault_plan

        plan_path = random_fault_plan(3, ["macro"]).save(
            tmp_path / "plan.json")
        store = {}
        self._capture(monkeypatch, store)
        with pytest.raises(_Captured):
            main(["run", "--checkpoint-dir", str(tmp_path / "ckpt"),
                  "--keep-going", "--fault-plan", str(plan_path),
                  "--degradation", "fill", "--quiet"])
        config = store["config"]
        assert config.on_error == "capture"
        assert config.degradation == "fill"
        assert config.fault_plan is not None
        assert len(config.fault_plan.events) > 0
        assert store["checkpoint_dir"].endswith("ckpt")
        assert store["resume"] is False

    def test_resume_flag_sets_dir_and_resume(self, tmp_path,
                                             monkeypatch):
        store = {}
        self._capture(monkeypatch, store)
        with pytest.raises(_Captured):
            main(["run", "--resume", str(tmp_path / "ckpt"), "--quiet"])
        assert store["checkpoint_dir"].endswith("ckpt")
        assert store["resume"] is True

    def test_checkpoint_mismatch_is_a_clean_failure(
            self, tmp_path, monkeypatch, capsys):
        import repro.cli as cli
        from repro.resilience import CheckpointMismatch

        def stub(config, checkpoint_dir=None, resume=False):
            raise CheckpointMismatch("different configuration")

        monkeypatch.setattr(cli, "run_experiment", stub)
        code = main(["run", "--resume", str(tmp_path / "ckpt"),
                     "--quiet"])
        assert code == 1
        out = capsys.readouterr().out
        assert "cannot resume" in out
        assert "start fresh" in out


class TestChaosCommand:
    @staticmethod
    def _stub_chaos(monkeypatch, store):
        import repro.cli as cli
        from repro.resilience import CategoryDegradation, ChaosReport

        def stub(config, plan, policy="fill"):
            store.update(config=config, plan=plan, policy=policy)
            return ChaosReport(
                plan=plan, policy=policy,
                rows=[CategoryDegradation("diverse", 1.0, 1.25)],
                n_scenarios_compared=2,
            )

        monkeypatch.setattr(cli, "run_chaos", stub)

    def test_prints_table_and_saves_plan(self, tmp_path, monkeypatch,
                                         capsys):
        store = {}
        self._stub_chaos(monkeypatch, store)
        plan_path = tmp_path / "plan.json"
        code = main(["chaos", "--chaos-seed", "7", "--save-plan",
                     str(plan_path), "--quiet"])
        assert code == 0
        assert plan_path.exists()
        out = capsys.readouterr().out
        assert "fault plan written to" in out
        assert "+25.0%" in out
        assert store["policy"] == "fill"
        assert len(store["plan"].events) > 0

    def test_loads_existing_plan(self, tmp_path, monkeypatch, capsys):
        from repro.resilience import random_fault_plan

        plan = random_fault_plan(5, ["sentiment"])
        plan_path = plan.save(tmp_path / "plan.json")
        store = {}
        self._stub_chaos(monkeypatch, store)
        code = main(["chaos", "--plan", str(plan_path), "--quiet",
                     "--degradation", "drop-category"])
        assert code == 0
        assert store["policy"] == "drop-category"
        assert store["plan"].seed == plan.seed
        assert len(store["plan"].events) == len(plan.events)

    def test_report_file_written(self, tmp_path, monkeypatch, capsys):
        self._stub_chaos(monkeypatch, {})
        report_path = tmp_path / "chaos.txt"
        code = main(["chaos", "--report", str(report_path), "--quiet"])
        assert code == 0
        assert "clean MSE" in report_path.read_text()


class TestTraceSummaryCounters:
    @staticmethod
    def _write_trace_with_counters(path):
        from repro.obs import Tracer, write_jsonl
        from repro.obs.trace import Span

        class Clock:
            def __init__(self):
                self.now = 0.0

            def __call__(self):
                self.now += 0.5
                return self.now

        tracer = Tracer(clock=Clock())
        with tracer.span("experiment.run"):
            pass
        spans = list(tracer.spans)
        spans.append(Span(
            name="run.metrics", start=spans[0].start,
            end=spans[0].start,
            attrs={"counters": {"resilience.retry": 3,
                                "checkpoint.saved": 2}},
        ))
        return write_jsonl(spans, path)

    def test_counters_rendered_outside_stage_table(self, tmp_path,
                                                   capsys):
        path = self._write_trace_with_counters(tmp_path / "t.jsonl")
        code = main(["trace-summary", str(path)])
        assert code == 0
        out = capsys.readouterr().out
        assert "counters:" in out
        assert "resilience.retry" in out
        assert "3" in out
        # the synthetic carrier never shows up as a timing stage
        assert "run.metrics" not in out
        assert "1 spans" in out

    def test_counters_only_trace_fails_cleanly(self, tmp_path, capsys):
        from repro.obs import write_jsonl
        from repro.obs.trace import Span

        spans = [Span(name="run.metrics", start=0.0, end=0.0,
                      attrs={"counters": {"a": 1}})]
        path = write_jsonl(spans, tmp_path / "t.jsonl")
        code = main(["trace-summary", str(path)])
        assert code == 1
        assert "no timing spans" in capsys.readouterr().out


class TestIndexCommand:
    def test_prints_analysis(self, capsys, monkeypatch):
        TestSimulateCommand._patch_small(monkeypatch)
        code = main(["index", "--seed", "3"])
        assert code == 0
        out = capsys.readouterr().out
        assert "best scaling power" in out
        assert "top-100 market share" in out


class TestPredictorWiring:
    def test_parser_accepts_predictor(self):
        args = build_parser().parse_args(["run", "--predictor", "naive"])
        assert args.predictor == "naive"

    def test_parser_default_is_none(self):
        args = build_parser().parse_args(["run"])
        assert args.predictor is None

    def test_parser_rejects_unknown_predictor(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--predictor", "jit"])

    def test_flag_reaches_config(self, monkeypatch):
        import repro.cli as cli

        store = {}

        def stub(config, checkpoint_dir=None, resume=False):
            store["config"] = config
            raise _Captured

        monkeypatch.setattr(cli, "run_experiment", stub)
        with pytest.raises(_Captured):
            main(["run", "--predictor", "naive"])
        assert store["config"].predictor == "naive"

    def test_config_default_without_flag(self, monkeypatch):
        import repro.cli as cli

        store = {}

        def stub(config, checkpoint_dir=None, resume=False):
            store["config"] = config
            raise _Captured

        monkeypatch.setattr(cli, "run_experiment", stub)
        with pytest.raises(_Captured):
            main(["run"])
        assert store["config"].predictor == "compiled"

    def test_trace_summary_shows_predict_counters(self, tmp_path, capsys):
        from repro.obs import Tracer, write_jsonl
        from repro.obs.trace import Span

        tracer = Tracer()
        with tracer.span("experiment.run"):
            pass
        spans = list(tracer.spans)
        spans.append(Span(
            name="run.metrics", start=spans[0].start, end=spans[0].start,
            attrs={"counters": {"predict.compiled_calls": 12,
                                "predict.compiled_rows": 4800,
                                "cache.hits": 2}},
        ))
        path = write_jsonl(spans, tmp_path / "t.jsonl")
        code = main(["trace-summary", str(path)])
        assert code == 0
        out = capsys.readouterr().out
        assert "counters:" in out
        assert "predict.compiled_calls" in out
        assert "predict.compiled_rows" in out
        assert "4800" in out
        assert "cache.hits" in out


class TestUpdateCommand:
    def test_parser_args(self, tmp_path):
        args = build_parser().parse_args(
            ["update", "--days", "3", "--cache-dir",
             str(tmp_path / "cache"), "--ledger",
             str(tmp_path / "runs.jsonl"), "--quiet"]
        )
        assert args.command == "update"
        assert args.days == 3
        assert args.preset == "fast"
        assert args.cache_dir.name == "cache"
        assert args.ledger.name == "runs.jsonl"

    def test_parser_defaults(self):
        args = build_parser().parse_args(["update"])
        assert args.days == 1
        assert not args.no_cache
        assert args.report is None

    def test_parser_rejects_nonpositive_days(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["update", "--days", "0"])

    @staticmethod
    def _capture(monkeypatch, store):
        import repro.incremental

        def stub(config, days=1, checkpoint_dir=None, cache_dir=None,
                 ledger_path=None):
            store.update(config=config, days=days, cache_dir=cache_dir,
                         ledger_path=ledger_path)
            raise _Captured

        monkeypatch.setattr(repro.incremental, "update_experiment", stub)

    def test_flags_reach_update_experiment(self, tmp_path, monkeypatch):
        store = {}
        self._capture(monkeypatch, store)
        with pytest.raises(_Captured):
            main(["update", "--days", "5", "--cache-dir",
                  str(tmp_path / "cache"), "--ledger",
                  str(tmp_path / "runs.jsonl"), "--jobs", "1",
                  "--quiet"])
        assert store["days"] == 5
        assert store["cache_dir"].endswith("cache")
        assert store["ledger_path"].endswith("runs.jsonl")
        assert store["config"].n_jobs == 1
        assert store["config"].verbose is False

    def test_no_cache_warns_cold(self, monkeypatch, capsys):
        store = {}
        self._capture(monkeypatch, store)
        with pytest.raises(_Captured):
            main(["update", "--no-cache", "--quiet"])
        assert store["cache_dir"] is None
        assert "runs cold" in capsys.readouterr().out

    def test_exit_code_follows_completeness(self, monkeypatch, capsys):
        import repro.cli as cli
        import repro.incremental
        from types import SimpleNamespace

        from repro.incremental import UpdateResult

        def stub(config, days=1, **kwargs):
            import dataclasses as dc

            from repro.synth.extend import extended_config

            extended = dc.replace(
                config,
                simulation=extended_config(config.simulation, days),
            )
            return UpdateResult(
                results=SimpleNamespace(runtime_seconds=1.5,
                                        complete=False),
                config=extended, days=days, dataset_reused=True,
                scenarios_cached=2, scenarios_total=4,
            )

        monkeypatch.setattr(repro.incremental, "update_experiment", stub)
        monkeypatch.setattr(cli, "_render_full_report",
                            lambda results: "stub report")
        code = main(["update", "--no-cache", "--quiet"])
        assert code == 1
        out = capsys.readouterr().out
        assert "+1 day(s)" in out
        assert "spliced from parent" in out
        assert "2/4 served from cache" in out
        assert "stub report" in out
