"""CLI wiring for the observability commands: report, bench, --ledger.

Same approach as ``tests/test_cli.py``: parser assertions are direct,
command-handler tests stub the expensive entry points and check exit
codes plus rendered output.
"""

import json

import pytest

from repro.cli import build_parser, main
from repro.obs import RunLedger, RunRecord


def _record(**kwargs) -> RunRecord:
    defaults = dict(kind="run", started_at="2026-08-08T00:00:00Z")
    defaults.update(kwargs)
    return RunRecord(**defaults)


def _bench_dir(directory, speedup=2.0):
    directory.mkdir(parents=True, exist_ok=True)
    payload = {"schema": 1,
               "benchmarks": {"tree_fit": {"speedup_hist": speedup,
                                           "hist_s": 0.01}}}
    (directory / "BENCH_kernels.json").write_text(json.dumps(payload))
    return directory


class TestParser:
    def test_report_args(self, tmp_path):
        args = build_parser().parse_args(
            ["report", str(tmp_path / "runs.jsonl"), "--last", "5",
             "--kind", "run"])
        assert args.command == "report"
        assert args.last == 5 and args.kind == "run"

    def test_report_compare(self):
        args = build_parser().parse_args(
            ["report", "runs.jsonl", "--compare", "aaa", "bbb"])
        assert args.compare == ["aaa", "bbb"]

    def test_bench_args(self, tmp_path):
        args = build_parser().parse_args(
            ["bench", "check", "--results", str(tmp_path),
             "--tolerance", "0.4", "--verbose"])
        assert args.action == "check"
        assert args.tolerance == 0.4 and args.verbose

    def test_run_ledger_and_profile_flags(self, tmp_path):
        args = build_parser().parse_args(
            ["run", "--ledger", str(tmp_path / "runs.jsonl"),
             "--profile"])
        assert str(args.ledger).endswith("runs.jsonl")
        assert args.profile is True

    def test_run_ledger_default_is_unset(self):
        # Env resolution ($REPRO_LEDGER) happens at command time, not
        # at parse time — the parser default stays None.
        assert build_parser().parse_args(["run"]).ledger is None


class _Captured(Exception):
    """Raised by stubs after recording the call."""


class TestRunLedgerWiring:
    @staticmethod
    def _capture(monkeypatch, store):
        import repro.cli as cli

        def stub(config, **kwargs):
            store.update(config=config, **kwargs)
            raise _Captured

        monkeypatch.setattr(cli, "run_experiment", stub)

    def test_ledger_and_profile_reach_run_experiment(
            self, tmp_path, monkeypatch):
        store = {}
        self._capture(monkeypatch, store)
        with pytest.raises(_Captured):
            main(["run", "--ledger", str(tmp_path / "runs.jsonl"),
                  "--profile", "--quiet"])
        assert store["ledger_path"].endswith("runs.jsonl")
        assert store["config"].profile is True

    def test_env_ledger_reaches_run_experiment(self, tmp_path,
                                               monkeypatch):
        store = {}
        self._capture(monkeypatch, store)
        monkeypatch.setenv("REPRO_LEDGER",
                           str(tmp_path / "env.jsonl"))
        with pytest.raises(_Captured):
            main(["run", "--quiet"])
        assert store["ledger_path"].endswith("env.jsonl")

    def test_without_flags_no_ledger_kwarg_is_passed(
            self, tmp_path, monkeypatch):
        # Stubs with narrower signatures (and the real default path)
        # must keep working when no ledger is requested.
        import repro.cli as cli
        monkeypatch.delenv("REPRO_LEDGER", raising=False)
        store = {}

        def stub(config, checkpoint_dir=None, resume=False):
            store.update(config=config)
            raise _Captured

        monkeypatch.setattr(cli, "run_experiment", stub)
        with pytest.raises(_Captured):
            main(["run", "--quiet"])
        assert store["config"].profile is False


class TestReportCommand:
    def test_history_lists_records(self, tmp_path, capsys):
        ledger = RunLedger(tmp_path / "runs.jsonl")
        first = ledger.append(_record(duration_s=20.0))
        second = ledger.append(_record(duration_s=2.0,
                                       cache={"hits": 4}))
        assert main(["report", str(ledger.path)]) == 0
        out = capsys.readouterr().out
        assert first.run_id[:8] in out and second.run_id[:8] in out
        assert "4 hits" in out

    def test_single_run_view(self, tmp_path, capsys):
        ledger = RunLedger(tmp_path / "runs.jsonl")
        record = ledger.append(_record(
            fingerprint="cfg",
            stages={"experiment.run": {"count": 1, "total_s": 3.0,
                                       "self_s": 3.0, "max_s": 3.0}}))
        assert main(["report", str(ledger.path), "--run",
                     record.run_id[:6]]) == 0
        out = capsys.readouterr().out
        assert "experiment.run" in out and "fingerprint cfg" in out

    def test_unknown_run_id_fails(self, tmp_path, capsys):
        ledger = RunLedger(tmp_path / "runs.jsonl")
        ledger.append(_record())
        assert main(["report", str(ledger.path), "--run",
                     "nope"]) == 1
        assert "no record" in capsys.readouterr().out

    def test_compare_two_runs(self, tmp_path, capsys):
        ledger = RunLedger(tmp_path / "runs.jsonl")
        cold = ledger.append(_record(duration_s=20.0))
        warm = ledger.append(_record(duration_s=2.0))
        assert main(["report", str(ledger.path), "--compare",
                     cold.run_id, warm.run_id]) == 0
        assert "0.10x" in capsys.readouterr().out

    def test_missing_ledger_fails_cleanly(self, tmp_path, capsys,
                                          monkeypatch):
        monkeypatch.delenv("REPRO_LEDGER", raising=False)
        assert main(["report", str(tmp_path / "absent.jsonl")]) == 1
        assert main(["report"]) == 1

    def test_corrupt_lines_are_reported_not_fatal(self, tmp_path,
                                                  capsys):
        ledger = RunLedger(tmp_path / "runs.jsonl")
        record = ledger.append(_record())
        with ledger.path.open("a") as handle:
            handle.write("garbage\n")
        assert main(["report", str(ledger.path)]) == 0
        out = capsys.readouterr().out
        assert record.run_id[:8] in out
        assert "skipped" in out


class TestBenchCommand:
    def test_identical_dirs_pass(self, tmp_path, capsys):
        fresh = _bench_dir(tmp_path / "fresh")
        base = _bench_dir(tmp_path / "base")
        code = main(["bench", "check", "--results", str(fresh),
                     "--baseline", str(base)])
        assert code == 0
        assert "RESULT: PASS" in capsys.readouterr().out

    def test_regression_fails_with_exit_one(self, tmp_path, capsys):
        fresh = _bench_dir(tmp_path / "fresh", speedup=0.5)
        base = _bench_dir(tmp_path / "base", speedup=2.0)
        code = main(["bench", "check", "--results", str(fresh),
                     "--baseline", str(base)])
        assert code == 1
        out = capsys.readouterr().out
        assert "FAIL" in out and "speedup_hist" in out

    def test_tolerance_flag_loosens_the_gate(self, tmp_path):
        fresh = _bench_dir(tmp_path / "fresh", speedup=1.2)
        base = _bench_dir(tmp_path / "base", speedup=2.0)
        assert main(["bench", "check", "--results", str(fresh),
                     "--baseline", str(base)]) == 1
        assert main(["bench", "check", "--results", str(fresh),
                     "--baseline", str(base),
                     "--tolerance", "0.5"]) == 0

    def test_empty_baseline_dir_is_a_usage_error(self, tmp_path,
                                                 capsys):
        fresh = _bench_dir(tmp_path / "fresh")
        empty = tmp_path / "base"
        empty.mkdir()
        code = main(["bench", "check", "--results", str(fresh),
                     "--baseline", str(empty)])
        assert code == 2

    def test_results_dir_defaults_to_env(self, tmp_path, capsys,
                                         monkeypatch):
        fresh = _bench_dir(tmp_path / "fresh")
        base = _bench_dir(tmp_path / "base")
        monkeypatch.setenv("REPRO_BENCH_DIR", str(fresh))
        assert main(["bench", "check", "--baseline",
                     str(base)]) == 0

    def test_missing_results_dir_fails_cleanly(self, monkeypatch,
                                               capsys):
        monkeypatch.delenv("REPRO_BENCH_DIR", raising=False)
        assert main(["bench", "check"]) == 1
        assert "REPRO_BENCH_DIR" in capsys.readouterr().out
