"""End-to-end ledger wiring: cold and warm runs leave linked records.

The acceptance demo from the observability tentpole, as a test: a cold
and a cache-warm ``run_experiment`` against one config append two
ledger records that share a fingerprint and dataset key, the warm
record shows the cache hits, and ``render_history``/``render_record``
surface both with per-stage wall time (plus peak memory when the run
was profiled).
"""

import dataclasses

import pytest

from repro.core.pipeline import ExperimentConfig, run_experiment
from repro.obs import RunLedger, render_history, render_record
from repro.resilience import FaultPlan, run_chaos


@pytest.fixture(scope="module")
def mini_config():
    config = ExperimentConfig.fast()
    return dataclasses.replace(
        config,
        simulation=dataclasses.replace(config.simulation,
                                       end="2019-12-31"),
        periods=("2017",),
        windows=(7,),
        run_gb_validation=False,
        n_jobs=1,
    )


@pytest.fixture(scope="module")
def ledger_path(tmp_path_factory):
    return tmp_path_factory.mktemp("ledger") / "runs.jsonl"


@pytest.fixture(scope="module")
def cache_dir(tmp_path_factory):
    return tmp_path_factory.mktemp("ledger-cache")


@pytest.fixture(scope="module")
def cold_and_warm(mini_config, cache_dir, ledger_path):
    cold = run_experiment(mini_config, cache_dir=str(cache_dir),
                          ledger_path=str(ledger_path))
    warm = run_experiment(mini_config, cache_dir=str(cache_dir),
                          ledger_path=str(ledger_path))
    return cold, warm


class TestRunLedgerIntegration:
    def test_both_runs_append_linked_records(self, cold_and_warm,
                                             ledger_path):
        records = RunLedger(ledger_path).records()
        assert len(records) == 2
        cold, warm = records
        assert cold.kind == "run" and warm.kind == "run"
        assert cold.fingerprint == warm.fingerprint
        assert cold.cache["dataset_key"] == warm.cache["dataset_key"]
        assert cold.run_id != warm.run_id

    def test_warm_record_shows_cache_hits(self, cold_and_warm,
                                          ledger_path):
        cold, warm = RunLedger(ledger_path).records()
        assert cold.cache.get("hits", 0) == 0
        assert warm.cache["hits"] > 0

    def test_records_carry_stages_and_host(self, cold_and_warm,
                                           ledger_path):
        record = RunLedger(ledger_path).latest()
        assert "experiment.run" in record.stages
        assert record.stages["experiment.run"]["total_s"] > 0
        assert record.host["python"]
        assert record.status == "ok"
        assert record.duration_s == pytest.approx(
            cold_and_warm[1].runtime_seconds, abs=1.0)

    def test_history_renders_both_runs(self, cold_and_warm,
                                       ledger_path):
        records = RunLedger(ledger_path).records()
        text = render_history(records)
        for record in records:
            assert record.run_id[:8] in text
        assert "hits" in text

    def test_record_renders_stage_table(self, cold_and_warm,
                                        ledger_path):
        record = RunLedger(ledger_path).latest()
        text = render_record(record)
        assert "experiment.run" in text
        assert "fingerprint" in text


class TestProfiledRunLedger:
    def test_profiled_run_records_peak_memory(self, mini_config,
                                              tmp_path):
        ledger_path = tmp_path / "runs.jsonl"
        config = dataclasses.replace(mini_config, profile=True)
        run_experiment(config, ledger_path=str(ledger_path))
        record = RunLedger(ledger_path).latest()
        stages = record.stages["experiment.run"]
        assert stages["mem_peak_kb"] > 0
        assert stages["cpu_s"] >= 0.0
        assert "peak-mem" in render_record(record)

    def test_profile_flag_does_not_change_fingerprint(
            self, mini_config, cold_and_warm, tmp_path, ledger_path):
        profiled_path = tmp_path / "runs.jsonl"
        config = dataclasses.replace(mini_config, profile=True)
        run_experiment(config, ledger_path=str(profiled_path))
        profiled = RunLedger(profiled_path).latest()
        plain = RunLedger(ledger_path).latest()
        assert profiled.fingerprint == plain.fingerprint


class TestChaosLedger:
    def test_chaos_run_appends_a_chaos_record(self, mini_config,
                                              tmp_path):
        ledger_path = tmp_path / "runs.jsonl"
        plan = FaultPlan(seed=11, events=())
        run_chaos(mini_config, plan, ledger_path=str(ledger_path))
        record = RunLedger(ledger_path).latest()
        assert record.kind == "chaos"
        assert record.labels["policy"]
        assert "clean_runtime_s" in record.extra
