"""Structured logging facade: formatting, binding, configuration."""

import io
import json
import logging

import pytest

from repro.obs import (
    configure_logging,
    get_logger,
    logging_configured,
    reset_logging,
)


@pytest.fixture(autouse=True)
def clean_logging_state():
    """Each test starts and ends with pristine handler state."""
    reset_logging()
    yield
    reset_logging()


def capture(level="debug", json_mode=False):
    stream = io.StringIO()
    configure_logging(level=level, json_mode=json_mode, stream=stream)
    return stream


class TestGetLogger:
    def test_namespaced_under_repro(self):
        assert get_logger("fra").name == "repro.fra"
        assert get_logger("repro.fra").name == "repro.fra"
        assert get_logger().name == "repro"

    def test_bind_merges_context(self):
        log = get_logger("x", run="r1").bind(scenario="2017_7")
        assert log.context == {"run": "r1", "scenario": "2017_7"}


class TestKeyValueOutput:
    def test_event_and_fields_rendered(self):
        stream = capture()
        get_logger("pipeline").info("stage.done", scenario="2017_7",
                                    n_features=83)
        line = stream.getvalue().strip()
        assert "INFO" in line
        assert "repro.pipeline" in line
        assert "stage.done" in line
        assert "scenario=2017_7" in line
        assert "n_features=83" in line

    def test_float_fields_compact(self):
        stream = capture()
        get_logger("x").info("e", mse=0.123456789)
        assert "mse=0.123457" in stream.getvalue()

    def test_values_with_spaces_quoted(self):
        stream = capture()
        get_logger("x").info("e", note="two words")
        assert 'note="two words"' in stream.getvalue()

    def test_bound_context_included(self):
        stream = capture()
        get_logger("x").bind(run="r9").info("e", k=1)
        line = stream.getvalue()
        assert "run=r9" in line and "k=1" in line


class TestJsonOutput:
    def test_lines_parse_and_carry_fields(self):
        stream = capture(json_mode=True)
        get_logger("fra").info("iteration", n_removed=12)
        payload = json.loads(stream.getvalue())
        assert payload["level"] == "info"
        assert payload["logger"] == "repro.fra"
        assert payload["event"] == "iteration"
        assert payload["n_removed"] == 12


class TestConfiguration:
    def test_level_filters(self):
        stream = capture(level="warning")
        log = get_logger("x")
        log.info("hidden")
        log.warning("shown")
        output = stream.getvalue()
        assert "hidden" not in output
        assert "shown" in output

    def test_unknown_level_rejected(self):
        with pytest.raises(ValueError):
            configure_logging(level="loud")

    def test_reconfigure_replaces_handler(self):
        first = io.StringIO()
        second = io.StringIO()
        configure_logging(level="info", stream=first)
        configure_logging(level="info", stream=second)
        get_logger("x").info("once")
        assert first.getvalue() == ""
        assert second.getvalue().count("once") == 1

    def test_env_level(self, monkeypatch):
        monkeypatch.setenv("REPRO_LOG_LEVEL", "debug")
        stream = io.StringIO()
        configure_logging(stream=stream)
        get_logger("x").debug("deep")
        assert "deep" in stream.getvalue()

    def test_env_json(self, monkeypatch):
        monkeypatch.setenv("REPRO_LOG_JSON", "1")
        stream = io.StringIO()
        configure_logging(level="info", stream=stream)
        get_logger("x").info("e")
        assert json.loads(stream.getvalue())["event"] == "e"

    def test_configured_flag_and_reset(self):
        assert not logging_configured()
        configure_logging(level="info", stream=io.StringIO())
        assert logging_configured()
        reset_logging()
        assert not logging_configured()

    def test_nothing_emitted_without_configuration(self, capsys):
        # repro loggers stay silent (and don't hit the root logger's
        # lastResort stderr handler at INFO) until configured
        get_logger("x").info("quiet")
        captured = capsys.readouterr()
        assert "quiet" not in captured.out
        assert "quiet" not in captured.err

    def test_debug_calls_cheap_when_disabled(self):
        stream = capture(level="warning")
        log = get_logger("x")

        class Exploding:
            def __str__(self):
                raise AssertionError("should never be rendered")

        log.debug("skipped", value=Exploding())
        assert stream.getvalue() == ""
