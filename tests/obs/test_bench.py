"""The perf-regression gate: BENCH loading, classification, rendering.

Contracts under test: every committed BENCH artefact parses with the
one shared loader; speedup ratios gate with tolerance while absolute
seconds stay informational; boolean invariants fail on True→False;
missing coverage fails; the directory-level check pairs only suites
present on both sides.
"""

import json
from pathlib import Path

import pytest

from repro.obs import (
    check_bench_dirs,
    compare_benchmarks,
    load_bench,
    load_bench_dir,
    render_bench_check,
)

REPO = Path(__file__).resolve().parent.parent.parent
BASELINES = REPO / "benchmarks" / "results"


def _write(directory: Path, suite: str, benchmarks: dict,
           **meta) -> Path:
    payload = {"schema": 1, **meta, "benchmarks": benchmarks}
    path = directory / f"BENCH_{suite}.json"
    path.write_text(json.dumps(payload))
    return path


class TestLoadBench:
    def test_every_committed_artefact_parses(self):
        suites = load_bench_dir(BASELINES)
        assert {"kernels", "parallel", "predict", "obs"} <= set(suites)
        for suite, payload in suites.items():
            assert payload["schema"] == 1, suite
            assert isinstance(payload["benchmarks"], dict), suite
            assert payload["benchmarks"], suite

    def test_rejects_missing_benchmarks_key(self, tmp_path):
        path = tmp_path / "BENCH_bad.json"
        path.write_text('{"schema": 1}')
        with pytest.raises(ValueError, match="benchmarks"):
            load_bench(path)

    def test_rejects_unknown_schema(self, tmp_path):
        path = tmp_path / "BENCH_bad.json"
        path.write_text('{"schema": 99, "benchmarks": {}}')
        with pytest.raises(ValueError, match="schema"):
            load_bench(path)


class TestCompareBenchmarks:
    def test_ratio_within_tolerance_passes(self):
        deltas = compare_benchmarks(
            {"b": {"speedup_hist": 2.0}}, {"b": {"speedup_hist": 1.6}},
            ratio_tolerance=0.25,
        )
        [delta] = deltas
        assert delta.status == "ok" and not delta.failed

    def test_ratio_below_tolerance_fails(self):
        deltas = compare_benchmarks(
            {"b": {"speedup_hist": 2.0}}, {"b": {"speedup_hist": 1.4}},
            ratio_tolerance=0.25,
        )
        [delta] = deltas
        assert delta.status == "fail"

    def test_improved_ratio_passes(self):
        [delta] = compare_benchmarks(
            {"b": {"speedup_warm": 2.0}}, {"b": {"speedup_warm": 9.0}},
        )
        assert delta.status == "ok"

    def test_seconds_are_informational_even_when_slower(self):
        [delta] = compare_benchmarks(
            {"b": {"cold_s": 1.0}}, {"b": {"cold_s": 50.0}},
        )
        assert delta.status == "info" and not delta.gating

    def test_bool_regression_fails_without_tolerance(self):
        [delta] = compare_benchmarks(
            {"b": {"identical": True}}, {"b": {"identical": False}},
        )
        assert delta.status == "fail"

    def test_bool_staying_true_passes(self):
        [delta] = compare_benchmarks(
            {"b": {"deterministic": True}}, {"b": {"deterministic": True}},
        )
        assert delta.status == "ok"

    def test_missing_benchmark_fails(self):
        [delta] = compare_benchmarks(
            {"gone": {"speedup_hist": 2.0}}, {},
        )
        assert delta.status == "missing" and delta.failed

    def test_missing_gating_metric_fails(self):
        [delta] = compare_benchmarks(
            {"b": {"speedup_hist": 2.0}}, {"b": {}},
        )
        assert delta.status == "missing"

    def test_new_fresh_benchmark_is_informational(self):
        deltas = compare_benchmarks({}, {"new": {"speedup_x": 3.0}})
        [delta] = deltas
        assert delta.status == "info"

    def test_tolerance_validation(self):
        with pytest.raises(ValueError):
            compare_benchmarks({}, {}, ratio_tolerance=1.5)


class TestCheckBenchDirs:
    def test_identical_dirs_pass(self, tmp_path):
        fresh = tmp_path / "fresh"
        fresh.mkdir()
        _write(fresh, "kernels",
               {"tree_fit": {"speedup_hist": 2.0, "hist_s": 0.01}})
        base = tmp_path / "base"
        base.mkdir()
        _write(base, "kernels",
               {"tree_fit": {"speedup_hist": 2.0, "hist_s": 0.02}})
        deltas, ok = check_bench_dirs(fresh, base)
        assert ok

    def test_committed_baselines_pass_against_themselves(self):
        deltas, ok = check_bench_dirs(BASELINES, BASELINES)
        assert ok, render_bench_check(deltas)
        assert any(delta.gating for delta in deltas)

    def test_perturbed_ratio_fails_the_gate(self, tmp_path):
        fresh = tmp_path / "fresh"
        fresh.mkdir()
        for path in BASELINES.glob("BENCH_*.json"):
            (fresh / path.name).write_text(path.read_text())
        payload = json.loads((fresh / "BENCH_kernels.json").read_text())
        payload["benchmarks"]["forest_fit"]["speedup_hist"] = 0.1
        (fresh / "BENCH_kernels.json").write_text(json.dumps(payload))
        deltas, ok = check_bench_dirs(fresh, BASELINES)
        assert not ok
        failed = [d for d in deltas if d.failed]
        assert [(d.suite, d.benchmark, d.metric) for d in failed] == [
            ("kernels", "forest_fit", "speedup_hist")
        ]

    def test_suite_missing_from_fresh_is_informational(self, tmp_path):
        fresh = tmp_path / "fresh"
        fresh.mkdir()
        _write(fresh, "kernels", {"b": {"speedup_hist": 2.0}})
        base = tmp_path / "base"
        base.mkdir()
        _write(base, "kernels", {"b": {"speedup_hist": 2.0}})
        _write(base, "parallel", {"b": {"speedup_vs_serial": 1.0}})
        deltas, ok = check_bench_dirs(fresh, base)
        assert ok
        notes = [d for d in deltas if d.benchmark == "*"]
        assert any("not run" in d.note for d in notes)

    def test_empty_baseline_dir_raises(self, tmp_path):
        fresh = tmp_path / "fresh"
        fresh.mkdir()
        empty = tmp_path / "base"
        empty.mkdir()
        with pytest.raises(ValueError, match="no BENCH"):
            check_bench_dirs(fresh, empty)


class TestRender:
    def test_failures_listed_first_with_verdict(self):
        deltas = compare_benchmarks(
            {"b": {"speedup_hist": 2.0, "identical": True}},
            {"b": {"speedup_hist": 0.5, "identical": True}},
        )
        text = render_bench_check(deltas)
        assert text.splitlines()[0].startswith("FAIL")
        assert text.endswith("RESULT: FAIL")

    def test_pass_verdict(self):
        deltas = compare_benchmarks(
            {"b": {"speedup_hist": 2.0}}, {"b": {"speedup_hist": 2.0}},
        )
        text = render_bench_check(deltas)
        assert text.endswith("RESULT: PASS")

    def test_verbose_lists_informational_rows(self):
        deltas = compare_benchmarks(
            {"b": {"cold_s": 1.0}}, {"b": {"cold_s": 2.0}},
        )
        assert "cold_s" not in render_bench_check(deltas)
        assert "cold_s" in render_bench_check(deltas, verbose=True)
