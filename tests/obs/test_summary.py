"""Run summary: runtime formatting, aggregation, stage breakdown."""

import pytest

from repro.obs import (
    RunSummary,
    Span,
    aggregate_spans,
    format_runtime,
    format_slowest,
    format_stage_table,
    slowest_spans,
    stage_breakdown,
)


def make_span(name, start, end, span_id, parent_id=None, **attrs):
    return Span(name=name, start=start, end=end, span_id=span_id,
                parent_id=parent_id, attrs=attrs)


@pytest.fixture
def trace():
    """root(0..10) -> stage_a.work(1..4), stage_b.work(4..9)
    with stage_a.work containing stage_a.inner(2..3)."""
    return [
        make_span("stage_a.inner", 2.0, 3.0, 3, parent_id=2),
        make_span("stage_a.work", 1.0, 4.0, 2, parent_id=1),
        make_span("stage_b.work", 4.0, 9.0, 4, parent_id=1,
                  scenario="2017_7"),
        make_span("experiment.run", 0.0, 10.0, 1),
    ]


class TestFormatRuntime:
    @pytest.mark.parametrize("seconds,expected", [
        (0.0, "0ms"),
        (0.0004, "0ms"),
        (0.412, "412ms"),
        (0.9994, "999ms"),
        (1.0, "1.00s"),
        (3.456, "3.46s"),
        (48.12, "48.1s"),
        (65.0, "1m 05s"),
        (725.4, "12m 05s"),
    ])
    def test_rendering(self, seconds, expected):
        assert format_runtime(seconds) == expected

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            format_runtime(-1.0)

    def test_sub_second_not_rendered_as_zero_seconds(self):
        # the old ":.0f" formatting printed "0s" for any fast run
        assert format_runtime(0.5) != "0s"


class TestAggregateSpans:
    def test_totals_and_self_time(self, trace):
        stats = aggregate_spans(trace)
        assert stats["experiment.run"]["total_s"] == pytest.approx(10.0)
        # root self-time excludes its two direct children (3s + 5s)
        assert stats["experiment.run"]["self_s"] == pytest.approx(2.0)
        assert stats["stage_a.work"]["self_s"] == pytest.approx(2.0)
        assert stats["stage_a.inner"]["self_s"] == pytest.approx(1.0)

    def test_self_time_sums_to_total(self, trace):
        stats = aggregate_spans(trace)
        assert sum(e["self_s"] for e in stats.values()) == (
            pytest.approx(10.0)
        )

    def test_sorted_by_total_descending(self, trace):
        names = list(aggregate_spans(trace))
        assert names[0] == "experiment.run"

    def test_counts_and_mean(self):
        spans = [
            make_span("x.a", 0.0, 1.0, 1),
            make_span("x.a", 1.0, 4.0, 2),
        ]
        stats = aggregate_spans(spans)
        assert stats["x.a"]["count"] == 2
        assert stats["x.a"]["mean_s"] == pytest.approx(2.0)
        assert stats["x.a"]["max_s"] == pytest.approx(3.0)


class TestStageBreakdown:
    def test_groups_by_prefix_in_start_order(self, trace):
        breakdown = stage_breakdown(trace)
        assert list(breakdown) == ["experiment", "stage_a", "stage_b"]
        assert breakdown["stage_a"] == pytest.approx(3.0)
        assert breakdown["stage_b"] == pytest.approx(5.0)

    def test_breakdown_line_skips_experiment(self, trace):
        line = RunSummary(spans=trace).breakdown_line()
        assert "experiment" not in line
        assert "stage_a 3.00s" in line
        assert "stage_b 5.00s" in line


class TestSlowest:
    def test_orders_by_duration(self, trace):
        slowest = slowest_spans(trace, 2)
        assert [s.name for s in slowest] == [
            "experiment.run", "stage_b.work",
        ]

    def test_n_validated(self, trace):
        with pytest.raises(ValueError):
            slowest_spans(trace, 0)

    def test_format_includes_attrs(self, trace):
        text = format_slowest(trace, 3)
        assert "scenario=2017_7" in text


class TestRenderings:
    def test_stage_table_contains_all_names(self, trace):
        table = format_stage_table(trace)
        for name in ("experiment.run", "stage_a.work",
                     "stage_a.inner", "stage_b.work"):
            assert name in table
        assert "self" in table.splitlines()[0]

    def test_stage_table_empty_trace(self):
        table = format_stage_table([])
        assert "span" in table


class TestRunSummary:
    def test_total_seconds_from_root(self, trace):
        assert RunSummary(spans=trace).total_seconds == (
            pytest.approx(10.0)
        )

    def test_total_seconds_without_root(self):
        spans = [make_span("a.x", 1.0, 2.0, 1, parent_id=99)]
        assert RunSummary(spans=spans).total_seconds == (
            pytest.approx(1.0)
        )

    def test_empty_summary(self):
        summary = RunSummary()
        assert summary.total_seconds == 0.0
        assert summary.breakdown_line() == ""

    def test_to_dict_json_ready(self, trace):
        import json

        summary = RunSummary(
            spans=trace, metrics={"counters": {"c": 1}},
        )
        payload = summary.to_dict()
        json.dumps(payload)  # must serialise
        assert payload["total_seconds"] == pytest.approx(10.0)
        assert payload["metrics"]["counters"] == {"c": 1}
