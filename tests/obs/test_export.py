"""Metric exposition: Prometheus text and JSONL sink round-trips.

The satellite contract: registry → Prometheus text → parse and
registry → JSONL → read → merge are lossless for counters, gauges, and
histogram summaries — the exchange a scraper or a sharded sweep relies
on.
"""

import json

import pytest

from repro.obs import (
    MetricsRegistry,
    append_metrics_jsonl,
    parse_prometheus,
    prometheus_text,
    read_metrics_jsonl,
    sanitize_metric_name,
)


def _populated_registry() -> MetricsRegistry:
    registry = MetricsRegistry()
    registry.counter("cache.hits").inc(7)
    registry.counter("fra.features_eliminated").inc(1087)
    registry.gauge("experiment.scenarios").set(10)
    registry.gauge("synth.metrics").set(235.5)
    hist = registry.histogram("improvement.mse")
    for value in (1.0, 4.0, 2.0, 8.0, 16.0):
        hist.observe(value)
    return registry


class TestSanitize:
    def test_dots_and_dashes_become_underscores(self):
        assert sanitize_metric_name("cache.hits") == "cache_hits"
        assert sanitize_metric_name("a-b.c d") == "a_b_c_d"

    def test_leading_digit_is_prefixed(self):
        assert sanitize_metric_name("1weird")[0] == "_"

    def test_legal_names_pass_through(self):
        assert sanitize_metric_name("already_fine") == "already_fine"


class TestPrometheusText:
    def test_exposition_structure(self):
        text = prometheus_text(_populated_registry())
        assert "# TYPE cache_hits counter" in text
        assert "# TYPE experiment_scenarios gauge" in text
        assert "# TYPE improvement_mse summary" in text
        assert "# HELP cache_hits repro metric cache.hits" in text
        assert "cache_hits 7" in text
        assert 'improvement_mse{quantile="0.5"}' in text
        assert "improvement_mse_count 5" in text
        assert "improvement_mse_sum 31.0" in text
        assert text.endswith("\n")

    def test_empty_registry_renders_empty(self):
        assert prometheus_text(MetricsRegistry()).strip() == ""

    def test_round_trip_is_lossless(self):
        registry = _populated_registry()
        parsed = parse_prometheus(prometheus_text(registry))
        snapshot = registry.snapshot()
        assert parsed["counters"] == snapshot["counters"]
        assert parsed["gauges"] == snapshot["gauges"]
        mse = parsed["histograms"]["improvement.mse"]
        summary = snapshot["histograms"]["improvement.mse"]
        assert mse["count"] == summary["count"]
        assert mse["mean"] == pytest.approx(summary["mean"])
        assert mse["quantiles"][0.0] == summary["min"]
        assert mse["quantiles"][1.0] == summary["max"]
        assert mse["quantiles"][0.5] == pytest.approx(summary["p50"])
        assert mse["quantiles"][0.9] == pytest.approx(summary["p90"])
        assert mse["quantiles"][0.99] == pytest.approx(summary["p99"])

    def test_counter_values_parse_back_as_ints(self):
        parsed = parse_prometheus(prometheus_text(_populated_registry()))
        assert parsed["counters"]["cache.hits"] == 7
        assert isinstance(parsed["counters"]["cache.hits"], int)

    def test_dotted_names_recovered_from_help_lines(self):
        parsed = parse_prometheus(prometheus_text(_populated_registry()))
        assert set(parsed["counters"]) == {"cache.hits",
                                           "fra.features_eliminated"}

    def test_foreign_text_parses_under_sanitised_names(self):
        text = "# TYPE other_tool_total counter\nother_tool_total 3\n"
        parsed = parse_prometheus(text)
        assert parsed["counters"]["other_tool_total"] == 3


class TestMetricsJsonl:
    def test_append_and_read_back(self, tmp_path):
        path = tmp_path / "metrics.jsonl"
        append_metrics_jsonl(_populated_registry(), path,
                             meta={"run": "a"})
        append_metrics_jsonl(_populated_registry(), path,
                             meta={"run": "b"})
        lines = read_metrics_jsonl(path)
        assert [entry["meta"]["run"] for entry in lines] == ["a", "b"]

    def test_missing_file_reads_empty(self, tmp_path):
        assert read_metrics_jsonl(tmp_path / "absent.jsonl") == []

    def test_torn_line_is_skipped(self, tmp_path):
        path = tmp_path / "metrics.jsonl"
        append_metrics_jsonl(_populated_registry(), path)
        with path.open("a") as handle:
            handle.write('{"meta": {}, "metrics": {"coun')
        assert len(read_metrics_jsonl(path)) == 1

    def test_round_trip_merge_is_lossless(self, tmp_path):
        # Two shards dump to the sink; merging the lines back into one
        # registry reproduces the combined snapshot exactly — raw
        # histogram observations survive, not just summaries.
        path = tmp_path / "metrics.jsonl"
        shard_a = _populated_registry()
        shard_b = MetricsRegistry()
        shard_b.counter("cache.hits").inc(3)
        shard_b.histogram("improvement.mse").observe(32.0)
        append_metrics_jsonl(shard_a, path, meta={"shard": 0})
        append_metrics_jsonl(shard_b, path, meta={"shard": 1})

        merged = MetricsRegistry()
        for entry in read_metrics_jsonl(path):
            merged.merge(entry["metrics"])
        assert merged.counter("cache.hits").value == 10
        hist = merged.histogram("improvement.mse")
        assert hist.count == 6
        assert sorted(hist.values) == [1.0, 2.0, 4.0, 8.0, 16.0, 32.0]

        reference = MetricsRegistry()
        reference.merge(shard_a.dump())
        reference.merge(shard_b.dump())
        assert merged.snapshot() == reference.snapshot()

    def test_payload_is_plain_json(self, tmp_path):
        path = tmp_path / "metrics.jsonl"
        payload = append_metrics_jsonl(_populated_registry(), path)
        line = json.loads(path.read_text().splitlines()[0])
        assert line == json.loads(json.dumps(payload))
