"""Span tracer: nesting, ordering, JSONL round-trip, thread safety."""

import threading

import pytest

from repro.obs import (
    Span,
    Tracer,
    current_tracer,
    read_jsonl,
    span,
    use_tracer,
    write_jsonl,
)


class FakeClock:
    """Deterministic clock: each call advances one second."""

    def __init__(self, start=0.0, step=1.0):
        self.now = start
        self.step = step

    def __call__(self):
        value = self.now
        self.now += self.step
        return value


class TestSpanNesting:
    def test_parent_child_ids(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        by_name = {s.name: s for s in tracer.spans}
        assert by_name["outer"].parent_id is None
        assert by_name["inner"].parent_id == by_name["outer"].span_id

    def test_completion_order_children_first(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("a"):
            with tracer.span("b"):
                pass
            with tracer.span("c"):
                pass
        assert [s.name for s in tracer.spans] == ["b", "c", "a"]

    def test_deterministic_durations_with_fake_clock(self):
        # clock ticks: outer.start=0, inner.start=1, inner.end=2,
        # outer.end=3
        tracer = Tracer(clock=FakeClock())
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        by_name = {s.name: s for s in tracer.spans}
        assert by_name["inner"].duration == pytest.approx(1.0)
        assert by_name["outer"].duration == pytest.approx(3.0)

    def test_siblings_share_parent(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("root"):
            with tracer.span("left"):
                pass
            with tracer.span("right"):
                pass
        by_name = {s.name: s for s in tracer.spans}
        assert (by_name["left"].parent_id
                == by_name["right"].parent_id
                == by_name["root"].span_id)

    def test_attrs_mutable_during_span(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("work", fixed=1) as record:
            record.attrs["late"] = "yes"
        (only,) = tracer.spans
        assert only.attrs == {"fixed": 1, "late": "yes"}

    def test_exception_still_records_span(self):
        tracer = Tracer(clock=FakeClock())
        with pytest.raises(RuntimeError):
            with tracer.span("doomed"):
                raise RuntimeError("boom")
        assert [s.name for s in tracer.spans] == ["doomed"]

    def test_disabled_tracer_records_nothing(self):
        tracer = Tracer(clock=FakeClock(), enabled=False)
        with tracer.span("ghost") as record:
            record.attrs["x"] = 1  # still usable as a handle
        assert tracer.spans == []

    def test_clear(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("x"):
            pass
        tracer.clear()
        assert len(tracer) == 0

    def test_max_spans_drops_oldest(self):
        tracer = Tracer(clock=FakeClock(), max_spans=3)
        for i in range(5):
            with tracer.span(f"s{i}"):
                pass
        assert [s.name for s in tracer.spans] == ["s2", "s3", "s4"]

    def test_bad_max_spans_rejected(self):
        with pytest.raises(ValueError):
            Tracer(max_spans=0)


class TestCurrentTracer:
    def test_use_tracer_installs_and_restores(self):
        before = current_tracer()
        mine = Tracer(clock=FakeClock())
        with use_tracer(mine):
            assert current_tracer() is mine
            with span("via-module"):
                pass
        assert current_tracer() is before
        assert [s.name for s in mine.spans] == ["via-module"]

    def test_module_span_outside_use_goes_to_default(self):
        default = current_tracer()
        start = len(default)
        with span("ambient"):
            pass
        assert len(default) == start + 1


class TestJsonlRoundTrip:
    def test_round_trip_preserves_everything(self, tmp_path):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("outer", scenario="2017_7"):
            with tracer.span("inner", iteration=3):
                pass
        path = tracer.export(tmp_path / "trace.jsonl")
        loaded = read_jsonl(path)
        assert [s.to_dict() for s in loaded] == [
            s.to_dict() for s in tracer.spans
        ]

    def test_write_jsonl_creates_parent_dirs(self, tmp_path):
        spans = [Span(name="a", start=0.0, end=1.0, span_id=1)]
        path = write_jsonl(spans, tmp_path / "deep" / "dir" / "t.jsonl")
        assert path.exists()
        assert read_jsonl(path)[0].name == "a"

    def test_read_skips_blank_lines(self, tmp_path):
        path = tmp_path / "t.jsonl"
        record = Span(name="a", start=0.0, end=1.0, span_id=1).to_dict()
        import json

        path.write_text(json.dumps(record) + "\n\n")
        assert len(read_jsonl(path)) == 1


class TestThreadSafety:
    def test_concurrent_spans_all_collected_and_nested(self):
        tracer = Tracer()
        n_threads, n_spans = 8, 50
        barrier = threading.Barrier(n_threads)

        def work(tid):
            barrier.wait()
            for i in range(n_spans):
                with tracer.span("worker", tid=tid, i=i):
                    with tracer.span("child", tid=tid):
                        pass

        threads = [
            threading.Thread(target=work, args=(t,), name=f"w{t}")
            for t in range(n_threads)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        spans = tracer.spans
        assert len(spans) == n_threads * n_spans * 2
        ids = [s.span_id for s in spans]
        assert len(set(ids)) == len(ids)  # ids never collide
        by_id = {s.span_id: s for s in spans}
        for child in (s for s in spans if s.name == "child"):
            parent = by_id[child.parent_id]
            # each child nests under a worker span of its own thread
            assert parent.name == "worker"
            assert parent.thread == child.thread
