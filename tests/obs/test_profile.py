"""Resource-profiling spans: measurement, merge, and zero-cost default.

The contract under test: :func:`repro.obs.profiled_span` annotates span
attrs with CPU/memory/GC measurements when profiling is on, rides the
existing worker-merge machinery unchanged (attrs are ordinary span
data), surfaces as extra ``trace-summary`` columns, and — the
acceptance criterion — costs essentially nothing when off (<5%
wall-time overhead over a bare span).
"""

import time

from repro.obs import (
    PROFILE_ATTRS,
    Tracer,
    aggregate_spans,
    format_stage_table,
    profiled_span,
    profiling_enabled,
    resolve_profiling,
    set_profiling,
    span,
    use_profiling,
    use_tracer,
)
from repro.parallel import ParallelMap


class TestProfiledSpan:
    def test_enabled_span_carries_every_profile_attr(self):
        tracer = Tracer()
        with use_tracer(tracer), use_profiling(True):
            with profiled_span("stage.alloc", scenario="x"):
                blob = [float(i) for i in range(100_000)]
                del blob
        record = tracer.spans[0]
        for attr in PROFILE_ATTRS:
            assert attr in record.attrs, attr
        # The 100k-float list is ~2.5 MB of traced allocations.
        assert record.attrs["mem_peak_kb"] > 1_000
        assert record.attrs["cpu_s"] >= 0.0
        assert record.attrs["max_rss_kb"] > 0
        # Ordinary attrs still ride along.
        assert record.attrs["scenario"] == "x"

    def test_disabled_span_carries_no_profile_attrs(self):
        tracer = Tracer()
        with use_tracer(tracer):
            with profiled_span("stage.plain"):
                pass
        assert not any(
            attr in tracer.spans[0].attrs for attr in PROFILE_ATTRS
        )

    def test_use_profiling_restores_previous_state(self):
        assert not profiling_enabled()
        with use_profiling(True):
            assert profiling_enabled()
            with use_profiling(False):
                assert not profiling_enabled()
            assert profiling_enabled()
        assert not profiling_enabled()

    def test_set_profiling_returns_previous(self):
        assert set_profiling(True) is False
        try:
            assert set_profiling(False) is True
        finally:
            set_profiling(False)

    def test_peak_is_per_span_for_sequential_stages(self):
        tracer = Tracer()
        with use_tracer(tracer), use_profiling(True):
            with profiled_span("stage.big"):
                blob = [float(i) for i in range(200_000)]
                del blob
            with profiled_span("stage.small"):
                pass
        by_name = {s.name: s for s in tracer.spans}
        # reset_peak at entry keeps the big stage's peak out of the
        # small stage's measurement.
        assert (by_name["stage.small"].attrs["mem_peak_kb"]
                < by_name["stage.big"].attrs["mem_peak_kb"])


class TestResolveProfiling:
    def test_explicit_flag_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_PROFILE", "1")
        assert resolve_profiling(False) is False
        assert resolve_profiling(True) is True

    def test_env_variants(self, monkeypatch):
        for value, expected in (("1", True), ("true", True),
                                ("YES", True), ("on", True),
                                ("0", False), ("", False),
                                ("off", False)):
            monkeypatch.setenv("REPRO_PROFILE", value)
            assert resolve_profiling() is expected, value

    def test_default_is_off(self, monkeypatch):
        monkeypatch.delenv("REPRO_PROFILE", raising=False)
        assert resolve_profiling() is False


def _profiled_work(item):
    with use_profiling(True):
        with profiled_span("worker.unit", item=item):
            blob = [float(i) for i in range(50_000)]
            del blob
    return item * 2


class TestWorkerMerge:
    def test_profile_attrs_merge_back_from_process_workers(self):
        tracer = Tracer()
        with use_tracer(tracer):
            results = ParallelMap(2).map(_profiled_work, [1, 2, 3])
        assert results == [2, 4, 6]
        units = [s for s in tracer.spans if s.name == "worker.unit"]
        assert len(units) == 3
        for record in units:
            assert record.attrs["mem_peak_kb"] > 100
            assert "cpu_s" in record.attrs


class TestSummaryColumns:
    def test_aggregates_include_profile_columns_when_present(self):
        tracer = Tracer()
        with use_tracer(tracer), use_profiling(True):
            for _ in range(2):
                with profiled_span("stage.a"):
                    blob = [float(i) for i in range(30_000)]
                    del blob
        stats = aggregate_spans(tracer.spans)["stage.a"]
        assert stats["count"] == 2
        assert stats["mem_peak_kb"] > 0      # max across spans
        assert stats["cpu_s"] >= 0.0         # summed across spans
        assert "gc_collections" in stats

    def test_unprofiled_aggregates_keep_historical_keys(self):
        tracer = Tracer()
        with use_tracer(tracer):
            with span("stage.a"):
                pass
        stats = aggregate_spans(tracer.spans)["stage.a"]
        assert set(stats) == {"count", "total_s", "self_s", "max_s",
                              "mean_s"}

    def test_stage_table_grows_columns_only_when_profiled(self):
        tracer = Tracer()
        with use_tracer(tracer):
            with span("stage.a"):
                pass
        assert "peak-mem" not in format_stage_table(tracer.spans)
        profiled = Tracer()
        with use_tracer(profiled), use_profiling(True):
            with profiled_span("stage.a"):
                pass
        table = format_stage_table(profiled.spans)
        assert "cpu" in table and "peak-mem" in table \
            and "max-rss" in table


class TestDisabledOverhead:
    def test_disabled_profiling_costs_under_a_microsecond_per_span(self):
        # Acceptance criterion: with profiling off, profiled_span is a
        # single flag check delegating to the bare span — under a
        # microsecond of extra work per span (the true cost is ~0.2µs;
        # a *relative* bound at these ~µs scales flaps with scheduler
        # noise, so the absolute per-span delta is what is asserted).
        # Paired interleaved rounds cancel CPU-frequency drift and the
        # median discards outlier rounds.
        import statistics

        n = 2000

        def run_bare():
            start = time.perf_counter()
            tracer = Tracer()
            with use_tracer(tracer):
                for i in range(n):
                    with span("overhead.probe", i=i):
                        pass
            return time.perf_counter() - start

        def run_profiled_off():
            start = time.perf_counter()
            tracer = Tracer()
            with use_tracer(tracer):
                for i in range(n):
                    with profiled_span("overhead.probe", i=i):
                        pass
            return time.perf_counter() - start

        run_bare(), run_profiled_off()  # warm-up
        deltas = []
        for _ in range(9):
            bare = run_bare()
            off = run_profiled_off()
            deltas.append((off - bare) / n)
        per_span = statistics.median(deltas)
        assert per_span < 1e-6, (
            f"disabled profiling costs {per_span * 1e9:.0f}ns per span "
            f"(budget: 1000ns)"
        )
