"""The run ledger: durable appends, fault tolerance, query/compare.

Contracts under test: every append is one fsynced line and survives a
concurrent/killed writer as at most one torn tail line (which readers
skip); records round-trip losslessly; query/latest/compare link runs of
one configuration through their fingerprint and cache keys; renderers
produce the history and per-stage tables behind ``repro report``.
"""

import json
import os
import signal
import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

from repro.obs import (
    RunLedger,
    RunRecord,
    Tracer,
    compare_records,
    git_describe,
    host_info,
    render_compare,
    render_history,
    render_record,
    span,
    stage_rows,
    use_tracer,
)


def _record(**kwargs) -> RunRecord:
    defaults = dict(kind="run", started_at="2026-08-08T00:00:00Z")
    defaults.update(kwargs)
    return RunRecord(**defaults)


class TestRunRecord:
    def test_round_trips_through_dict(self):
        record = _record(
            status="partial", duration_s=12.5, fingerprint="abc",
            seed=7, resumed=True, labels={"preset": "fast"},
            cache={"hits": 4, "dataset_key": "k1"},
            checkpoint={"dir": "ckpt"},
            stages={"stage.a": {"count": 1, "total_s": 1.0,
                                "self_s": 1.0, "max_s": 1.0}},
            metrics={"counters": {"cache.hits": 4}},
            host={"python": "3.12"}, git="abc123",
            extra={"scenarios": 4},
        )
        clone = RunRecord.from_dict(record.to_dict())
        assert clone == record

    def test_from_dict_tolerates_missing_fields(self):
        minimal = RunRecord.from_dict({"kind": "run"})
        assert minimal.status == "ok"
        assert minimal.labels == {} and minimal.stages == {}
        assert minimal.fingerprint is None

    def test_run_ids_are_distinct(self):
        assert _record().run_id != _record().run_id

    def test_started_now_stamps_utc(self):
        record = RunRecord.started_now("bench")
        assert record.started_at.endswith("Z")
        assert record.kind == "bench"


class TestRunLedgerAppend:
    def test_append_then_read_back(self, tmp_path):
        ledger = RunLedger(tmp_path / "runs.jsonl")
        first = ledger.append(_record(fingerprint="f1"))
        second = ledger.append(_record(fingerprint="f2"))
        records = ledger.records()
        assert [r.run_id for r in records] == [first.run_id,
                                               second.run_id]
        assert len(ledger) == 2

    def test_creates_parent_directories(self, tmp_path):
        ledger = RunLedger(tmp_path / "deep" / "nested" / "runs.jsonl")
        ledger.append(_record())
        assert len(ledger.records()) == 1

    def test_each_record_is_one_json_line(self, tmp_path):
        ledger = RunLedger(tmp_path / "runs.jsonl")
        ledger.append(_record())
        ledger.append(_record())
        lines = ledger.path.read_text().splitlines()
        assert len(lines) == 2
        for line in lines:
            json.loads(line)

    def test_missing_file_reads_as_empty(self, tmp_path):
        ledger = RunLedger(tmp_path / "absent.jsonl")
        assert ledger.records() == []
        assert ledger.latest() is None


class TestAppendUnderFault:
    def test_torn_trailing_line_is_skipped(self, tmp_path):
        ledger = RunLedger(tmp_path / "runs.jsonl")
        kept = ledger.append(_record(fingerprint="keep"))
        with ledger.path.open("a") as handle:
            handle.write('{"kind": "run", "status": "ok", "trunca')
        records, skipped = ledger.scan()
        assert skipped == 1
        assert [r.run_id for r in records] == [kept.run_id]

    def test_corrupt_middle_line_does_not_hide_later_records(
            self, tmp_path):
        ledger = RunLedger(tmp_path / "runs.jsonl")
        first = ledger.append(_record())
        with ledger.path.open("a") as handle:
            handle.write("not json at all\n")
        second = ledger.append(_record())
        records, skipped = ledger.scan()
        assert skipped == 1
        assert [r.run_id for r in records] == [first.run_id,
                                               second.run_id]

    def test_killed_writer_leaves_ledger_parseable(self, tmp_path):
        # A subprocess appends real records, then is SIGKILLed while
        # spinning mid-append; whatever landed must parse cleanly.
        ledger_path = tmp_path / "runs.jsonl"
        script = textwrap.dedent("""
            import os, sys
            sys.path.insert(0, {src!r})
            from repro.obs import RunLedger, RunRecord
            ledger = RunLedger({path!r})
            for i in range(3):
                ledger.append(RunRecord(kind="run",
                                        labels={{"i": i}}))
            print("ready", flush=True)
            # Tear the tail: a partial line with no newline, then spin
            # until the parent kills us.
            fd = os.open({path!r}, os.O_WRONLY | os.O_APPEND)
            os.write(fd, b'{{"kind": "run", "labels"')
            print("torn", flush=True)
            while True:
                pass
        """).format(src=str(Path("src").resolve()),
                    path=str(ledger_path))
        proc = subprocess.Popen(
            [sys.executable, "-c", script],
            stdout=subprocess.PIPE, text=True,
        )
        try:
            assert proc.stdout.readline().strip() == "ready"
            assert proc.stdout.readline().strip() == "torn"
        finally:
            proc.send_signal(signal.SIGKILL)
            proc.wait()
        records, skipped = RunLedger(ledger_path).scan()
        assert len(records) == 3
        assert skipped == 1
        assert [r.labels["i"] for r in records] == [0, 1, 2]

    def test_resume_appends_linked_record(self, tmp_path):
        # The cold run and the resumed run share a fingerprint — that
        # is the link 'repro report' groups by.
        ledger = RunLedger(tmp_path / "runs.jsonl")
        ledger.append(_record(fingerprint="cfg", status="partial"))
        ledger.append(_record(fingerprint="cfg", resumed=True))
        linked = ledger.query(fingerprint="cfg")
        assert len(linked) == 2
        assert linked[0].resumed is False and linked[1].resumed is True


class TestQuery:
    @pytest.fixture()
    def ledger(self, tmp_path):
        ledger = RunLedger(tmp_path / "runs.jsonl")
        ledger.append(_record(kind="run", fingerprint="a"))
        ledger.append(_record(kind="chaos", fingerprint="a",
                              status="partial"))
        ledger.append(_record(kind="run", fingerprint="b"))
        return ledger

    def test_filter_by_kind_and_fingerprint(self, ledger):
        assert len(ledger.query(kind="run")) == 2
        assert len(ledger.query(fingerprint="a")) == 2
        assert len(ledger.query(kind="run", fingerprint="a")) == 1

    def test_filter_by_status(self, ledger):
        assert len(ledger.query(status="partial")) == 1

    def test_limit_keeps_newest(self, ledger):
        newest = ledger.query(limit=1)
        assert len(newest) == 1
        assert newest[0].fingerprint == "b"

    def test_limit_must_be_positive(self, ledger):
        with pytest.raises(ValueError):
            ledger.query(limit=0)

    def test_latest_and_get_by_prefix(self, ledger):
        latest = ledger.latest(kind="run")
        assert latest.fingerprint == "b"
        assert ledger.get(latest.run_id[:6]).run_id == latest.run_id
        assert ledger.get("nonexistent") is None


class TestCompareAndRender:
    def _pair(self):
        cold = _record(
            duration_s=20.0, fingerprint="cfg",
            cache={"hits": 0, "dataset_key": "k1"},
            stages={"pipeline.scenario": {"count": 4, "total_s": 16.0,
                                          "self_s": 15.0, "max_s": 5.0,
                                          "mem_peak_kb": 4096.0,
                                          "cpu_s": 14.0,
                                          "max_rss_kb": 100_000.0},
                    "synth.dataset": {"count": 1, "total_s": 2.0,
                                      "self_s": 2.0, "max_s": 2.0}},
        )
        warm = _record(
            duration_s=2.0, fingerprint="cfg",
            cache={"hits": 4, "dataset_key": "k1"},
            stages={"pipeline.scenario": {"count": 4, "total_s": 0.4,
                                          "self_s": 0.4, "max_s": 0.2}},
        )
        return cold, warm

    def test_compare_records_ratios(self):
        cold, warm = self._pair()
        comparison = compare_records(cold, warm)
        assert comparison["duration"]["ratio"] == pytest.approx(0.1)
        scenario = comparison["stages"]["pipeline.scenario"]
        assert scenario["ratio"] == pytest.approx(0.025)
        # A stage only the cold run exercised has no ratio.
        assert comparison["stages"]["synth.dataset"]["ratio"] is None

    def test_render_history_lists_every_record(self):
        cold, warm = self._pair()
        text = render_history([cold, warm])
        assert cold.run_id[:8] in text and warm.run_id[:8] in text
        assert "4 hits" in text
        assert "peak-rss" in text     # memory column in the history

    def test_render_history_empty(self):
        assert "empty" in render_history([])

    def test_render_record_shows_stage_and_memory_columns(self):
        cold, _ = self._pair()
        text = render_record(cold)
        assert "pipeline.scenario" in text
        assert "peak-mem" in text and "4.0MB" in text
        assert "fingerprint cfg" in text
        assert "dataset_key=k1" in text

    def test_render_record_without_profile_attrs(self):
        _, warm = self._pair()
        text = render_record(warm)
        assert "pipeline.scenario" in text
        assert "peak-mem" not in text

    def test_render_compare(self):
        cold, warm = self._pair()
        text = render_compare(cold, warm)
        assert "0.10x" in text
        assert "pipeline.scenario" in text


class TestStageRows:
    def test_aggregates_spans_with_profile_attrs(self):
        tracer = Tracer()
        with use_tracer(tracer):
            with span("stage.a") as record:
                record.attrs["mem_peak_kb"] = 512.0
                record.attrs["cpu_s"] = 0.5
            with span("stage.a") as record:
                record.attrs["mem_peak_kb"] = 1024.0
                record.attrs["cpu_s"] = 0.25
        rows = stage_rows(tracer.spans)
        assert rows["stage.a"]["count"] == 2
        assert rows["stage.a"]["mem_peak_kb"] == 1024.0   # max
        assert rows["stage.a"]["cpu_s"] == pytest.approx(0.75)  # sum

    def test_plain_spans_keep_wall_time_fields_only(self):
        tracer = Tracer()
        with use_tracer(tracer):
            with span("stage.a"):
                pass
        rows = stage_rows(tracer.spans)
        assert set(rows["stage.a"]) == {"count", "total_s", "self_s",
                                        "max_s"}


class TestHostAndGit:
    def test_host_info_fields(self):
        info = host_info()
        assert info["python"] and info["platform"]
        assert info["pid"] == os.getpid()

    def test_git_describe_in_this_repo(self):
        # The repo under test is a git checkout, so this returns a
        # non-empty single-line description.
        described = git_describe(Path(__file__).resolve().parent)
        assert described is None or "\n" not in described

    def test_git_describe_degrades_to_none(self, tmp_path):
        assert git_describe(tmp_path) is None
