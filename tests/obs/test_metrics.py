"""Metrics registry: instruments, percentile math, snapshots, threads."""

import threading

import pytest

from repro.obs import (
    MetricsRegistry,
    current_metrics,
    use_metrics,
)


class TestCounter:
    def test_inc_accumulates(self):
        counter = MetricsRegistry().counter("c")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5

    def test_negative_rejected(self):
        counter = MetricsRegistry().counter("c")
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_same_name_same_instrument(self):
        registry = MetricsRegistry()
        registry.counter("c").inc()
        registry.counter("c").inc()
        assert registry.counter("c").value == 2


class TestGauge:
    def test_set_and_add(self):
        gauge = MetricsRegistry().gauge("g")
        gauge.set(10.0)
        gauge.add(-2.5)
        assert gauge.value == pytest.approx(7.5)


class TestHistogramPercentiles:
    def test_median_even_count_interpolates(self):
        hist = MetricsRegistry().histogram("h")
        for value in (1, 2, 3, 4):
            hist.observe(value)
        assert hist.percentile(50) == pytest.approx(2.5)

    def test_endpoints(self):
        hist = MetricsRegistry().histogram("h")
        for value in (5, 1, 9):
            hist.observe(value)
        assert hist.percentile(0) == 1
        assert hist.percentile(100) == 9

    def test_interpolation_between_ranks(self):
        hist = MetricsRegistry().histogram("h")
        for value in (0, 10):
            hist.observe(value)
        assert hist.percentile(25) == pytest.approx(2.5)

    def test_uniform_1_to_100(self):
        hist = MetricsRegistry().histogram("h")
        for value in range(1, 101):
            hist.observe(value)
        assert hist.percentile(50) == pytest.approx(50.5)
        assert hist.percentile(90) == pytest.approx(90.1)

    def test_out_of_range_rejected(self):
        hist = MetricsRegistry().histogram("h")
        hist.observe(1)
        with pytest.raises(ValueError):
            hist.percentile(101)

    def test_empty_histogram_rejected(self):
        hist = MetricsRegistry().histogram("h")
        with pytest.raises(ValueError):
            hist.percentile(50)

    def test_summary_fields(self):
        hist = MetricsRegistry().histogram("h")
        for value in (2.0, 4.0, 6.0):
            hist.observe(value)
        summary = hist.summary()
        assert summary["count"] == 3
        assert summary["min"] == 2.0
        assert summary["max"] == 6.0
        assert summary["mean"] == pytest.approx(4.0)
        assert summary["p50"] == pytest.approx(4.0)

    def test_empty_summary(self):
        assert MetricsRegistry().histogram("h").summary() == {"count": 0}


class TestSnapshot:
    def test_structure(self):
        registry = MetricsRegistry()
        registry.counter("a.count").inc(3)
        registry.gauge("b.level").set(1.5)
        registry.histogram("c.dist").observe(2.0)
        snap = registry.snapshot()
        assert snap["counters"] == {"a.count": 3}
        assert snap["gauges"] == {"b.level": 1.5}
        assert snap["histograms"]["c.dist"]["count"] == 1

    def test_clear(self):
        registry = MetricsRegistry()
        registry.counter("a").inc()
        registry.clear()
        assert registry.snapshot() == {
            "counters": {}, "gauges": {}, "histograms": {},
        }


class TestCurrentRegistry:
    def test_use_metrics_installs_and_restores(self):
        before = current_metrics()
        mine = MetricsRegistry()
        with use_metrics(mine):
            assert current_metrics() is mine
            current_metrics().counter("x").inc()
        assert current_metrics() is before
        assert mine.counter("x").value == 1


class TestThreadSafety:
    def test_concurrent_counter_increments(self):
        registry = MetricsRegistry()
        counter = registry.counter("hits")
        n_threads, n_incs = 8, 1000

        def work():
            for _ in range(n_incs):
                counter.inc()

        threads = [threading.Thread(target=work)
                   for _ in range(n_threads)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert counter.value == n_threads * n_incs

    def test_concurrent_histogram_observes(self):
        registry = MetricsRegistry()
        hist = registry.histogram("obs")

        def work():
            for i in range(500):
                hist.observe(float(i))

        threads = [threading.Thread(target=work) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert hist.count == 2000
