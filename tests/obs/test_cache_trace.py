"""Observability integration for the cache and the hist kernel.

Drives the real CLI end-to-end on a trimmed config: ``run`` with the
hist splitter, two worker processes and a cache directory, then
``trace-summary`` over the emitted trace. The summary must surface the
cache hit/miss counters and the histogram-kernel activity that happened
*inside worker processes* — proof that worker-side registries merge back
into the parent run.
"""

import dataclasses

import pytest

import repro.cli as cli
from repro.cli import main
from repro.core.pipeline import ExperimentConfig


@pytest.fixture(scope="module")
def mini_config():
    config = ExperimentConfig.fast()
    return dataclasses.replace(
        config,
        simulation=dataclasses.replace(config.simulation,
                                       end="2019-12-31"),
        periods=("2017",),
        windows=(7, 90),
        run_gb_validation=False,
        splitter="hist",
    )


@pytest.fixture(scope="module")
def summary_output(tmp_path_factory, mini_config):
    """stdout of trace-summary over a hist + cached + 2-worker run."""
    base = tmp_path_factory.mktemp("cache-trace")
    trace = base / "trace.jsonl"

    import io
    from contextlib import redirect_stdout

    presets = dict(cli._PRESETS)
    presets["fast"] = lambda seed=0: mini_config
    original = cli._PRESETS
    cli._PRESETS = presets
    try:
        with redirect_stdout(io.StringIO()):
            code = main([
                "run", "--preset", "fast", "--quiet",
                "--jobs", "2",
                "--splitter", "hist",
                "--cache-dir", str(base / "cache"),
                "--trace", str(trace),
            ])
    finally:
        cli._PRESETS = original
    assert code == 0

    buffer = io.StringIO()
    with redirect_stdout(buffer):
        assert main(["trace-summary", str(trace)]) == 0
    return buffer.getvalue()


class TestTraceSummaryShowsCacheAndKernel:
    def test_cache_counters_surface(self, summary_output):
        assert "cache.misses" in summary_output
        assert "cache.writes" in summary_output
        assert "cache.bytes_written" in summary_output

    def test_hist_kernel_counter_from_workers(self, summary_output):
        # Every tree fit happened inside a worker process; the counter
        # only appears if worker registries merged into the parent.
        assert "ml.tree_fit.hist" in summary_output
        assert "ml.tree_fit.exact" not in summary_output

    def test_worker_spans_merged(self, summary_output):
        assert "pipeline.scenario" in summary_output
        assert "ml.forest_fit" in summary_output
        assert "fra.reduce" in summary_output
