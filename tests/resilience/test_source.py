"""Unit tests for repro.resilience.source (retry/backoff/breaker)."""

import pytest

from repro.obs import MetricsRegistry, use_metrics
from repro.resilience import (
    CircuitBreaker,
    CircuitOpen,
    DataSource,
    FlakyFetch,
    RetryPolicy,
    SourceUnavailable,
)


class FakeClock:
    """A manually-advanced monotonic clock."""

    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


class SleepRecorder:
    def __init__(self):
        self.slept = []

    def __call__(self, seconds):
        self.slept.append(seconds)


class TestRetryPolicy:
    def test_exponential_schedule(self):
        policy = RetryPolicy(max_attempts=5, base_delay=0.5,
                             multiplier=2.0, max_delay=30.0)
        assert [policy.delay(k) for k in (1, 2, 3, 4)] == \
               [0.5, 1.0, 2.0, 4.0]

    def test_capped_at_max_delay(self):
        policy = RetryPolicy(base_delay=10.0, multiplier=3.0,
                             max_delay=25.0)
        assert policy.delay(1) == 10.0
        assert policy.delay(2) == 25.0
        assert policy.delay(9) == 25.0

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(base_delay=-1.0)
        with pytest.raises(ValueError):
            RetryPolicy(multiplier=0.5)
        with pytest.raises(ValueError):
            RetryPolicy().delay(0)


class TestCircuitBreaker:
    def test_trips_after_threshold(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=3, reset_timeout=60,
                                 clock=clock)
        assert breaker.state == "closed"
        assert breaker.record_failure() is False
        assert breaker.record_failure() is False
        assert breaker.record_failure() is True  # trip
        assert breaker.state == "open"
        assert breaker.allow() is False

    def test_half_open_after_timeout_single_probe(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=1, reset_timeout=60,
                                 clock=clock)
        breaker.record_failure()
        clock.advance(61)
        assert breaker.state == "half-open"
        assert breaker.allow() is True   # the probe
        assert breaker.allow() is False  # everyone else waits

    def test_probe_success_closes(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=1, reset_timeout=60,
                                 clock=clock)
        breaker.record_failure()
        clock.advance(61)
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == "closed"
        assert breaker.allow()

    def test_probe_failure_reopens_window(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=1, reset_timeout=60,
                                 clock=clock)
        breaker.record_failure()
        clock.advance(61)
        assert breaker.allow()
        breaker.record_failure()  # failed probe
        assert breaker.state == "open"
        clock.advance(59)
        assert breaker.state == "open"
        clock.advance(2)
        assert breaker.state == "half-open"

    def test_success_resets_failure_streak(self):
        breaker = CircuitBreaker(failure_threshold=2)
        breaker.record_failure()
        breaker.record_success()
        assert breaker.record_failure() is False  # streak restarted

    def test_validation(self):
        with pytest.raises(ValueError):
            CircuitBreaker(failure_threshold=0)
        with pytest.raises(ValueError):
            CircuitBreaker(reset_timeout=-1)

    def test_failed_probe_allows_a_new_probe_next_window(self):
        # probe exclusivity must reset with the window: after a failed
        # probe re-opens the circuit, the *next* half-open transition
        # gets exactly one fresh probe again.
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=1, reset_timeout=60,
                                 clock=clock)
        breaker.record_failure()
        clock.advance(61)
        assert breaker.allow() is True
        breaker.record_failure()          # probe fails, window restarts
        assert breaker.allow() is False   # open again: fail fast
        clock.advance(61)
        assert breaker.state == "half-open"
        assert breaker.allow() is True    # one new probe
        assert breaker.allow() is False   # still exactly one

    def test_probe_slot_freed_by_success_mid_window(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=1, reset_timeout=60,
                                 clock=clock)
        breaker.record_failure()
        clock.advance(61)
        assert breaker.allow() is True
        assert breaker.allow() is False   # exclusive while undecided
        breaker.record_success()
        assert breaker.state == "closed"
        assert breaker.allow() is True    # everyone flows again


class TestDataSourceHalfOpenRecovery:
    def test_end_to_end_open_probe_close_cycle(self):
        # Trip the breaker, fail fast while open, recover via the
        # half-open probe — all on a fake clock, no real waiting.
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=2, reset_timeout=60,
                                 clock=clock)
        fetch = FlakyFetch(lambda: "payload", failures=2, name="macro")
        source = DataSource(
            "macro", fetch,
            retry=RetryPolicy(max_attempts=2, base_delay=0.1),
            breaker=breaker, sleep=SleepRecorder(), clock=clock,
        )
        registry = MetricsRegistry()
        with use_metrics(registry):
            with pytest.raises(SourceUnavailable):
                source.fetch()            # 2 failures: breaker trips
            assert breaker.state == "open"
            with pytest.raises(CircuitOpen):
                source.fetch()            # open: fail fast, no attempt
            attempts_while_open = source.attempts
            clock.advance(61)             # reset window elapses
            assert breaker.state == "half-open"
            assert source.fetch() == "payload"  # the probe succeeds
            assert breaker.state == "closed"
            assert source.fetch() == "payload"  # closed: flows freely
        assert attempts_while_open == 2   # CircuitOpen never fetched
        counters = registry.snapshot()["counters"]
        assert counters["resilience.breaker.trip"] == 1
        assert counters["resilience.breaker.rejected"] == 1

    def test_failed_probe_goes_back_to_fail_fast(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=1, reset_timeout=60,
                                 clock=clock)
        fetch = FlakyFetch(lambda: "ok", failures=2, name="onchain")
        source = DataSource(
            "onchain", fetch,
            retry=RetryPolicy(max_attempts=1),
            breaker=breaker, sleep=SleepRecorder(), clock=clock,
        )
        with pytest.raises(SourceUnavailable):
            source.fetch()                # trips immediately
        clock.advance(61)
        with pytest.raises(SourceUnavailable):
            source.fetch()                # the probe itself fails
        assert breaker.state == "open"    # window restarted
        with pytest.raises(CircuitOpen):
            source.fetch()                # fail fast again
        clock.advance(61)
        assert source.fetch() == "ok"     # next probe recovers


class TestDataSource:
    def test_recovers_after_transient_failures(self):
        sleep = SleepRecorder()
        fetch = FlakyFetch(lambda: "payload", failures=2)
        source = DataSource("feed", fetch,
                            retry=RetryPolicy(max_attempts=3,
                                              base_delay=0.5),
                            sleep=sleep)
        metrics = MetricsRegistry()
        with use_metrics(metrics):
            assert source.fetch() == "payload"
        assert source.attempts == 3
        assert sleep.slept == [0.5, 1.0]  # the deterministic backoff
        counters = metrics.snapshot()["counters"]
        assert counters["resilience.retry"] == 2
        assert counters["resilience.fetch.failure"] == 2

    def test_exhausted_retries_raise_source_unavailable(self):
        sleep = SleepRecorder()
        fetch = FlakyFetch(lambda: "payload", permanent=True)
        source = DataSource("feed", fetch,
                            retry=RetryPolicy(max_attempts=2,
                                              base_delay=0.1),
                            sleep=sleep)
        with pytest.raises(SourceUnavailable, match="after 2 attempts"):
            source.fetch()
        assert source.attempts == 2
        assert sleep.slept == [0.1]  # no sleep after the final attempt

    def test_open_breaker_fails_fast(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=1, reset_timeout=60,
                                 clock=clock)
        breaker.record_failure()
        calls = []

        def fetch():
            calls.append(1)
            return "x"

        source = DataSource("feed", fetch, breaker=breaker,
                            sleep=lambda s: None, clock=clock)
        metrics = MetricsRegistry()
        with use_metrics(metrics):
            with pytest.raises(CircuitOpen):
                source.fetch()
        assert calls == []  # fetch never reached
        assert metrics.snapshot()["counters"][
            "resilience.breaker.rejected"] == 1

    def test_breaker_trip_counted(self):
        breaker = CircuitBreaker(failure_threshold=2)
        fetch = FlakyFetch(lambda: "x", permanent=True)
        source = DataSource("feed", fetch, breaker=breaker,
                            retry=RetryPolicy(max_attempts=2,
                                              base_delay=0.0),
                            sleep=lambda s: None)
        metrics = MetricsRegistry()
        with use_metrics(metrics):
            with pytest.raises(SourceUnavailable):
                source.fetch()
        assert metrics.snapshot()["counters"][
            "resilience.breaker.trip"] == 1

    def test_circuit_open_is_a_source_unavailable(self):
        assert issubclass(CircuitOpen, SourceUnavailable)

    def test_fetch_span_records_outcome(self):
        from repro.obs import Tracer, use_tracer

        tracer = Tracer()
        source = DataSource("feed", lambda: 42, sleep=lambda s: None)
        with use_tracer(tracer):
            assert source.fetch() == 42
        fetch_spans = [s for s in tracer.spans
                       if s.name == "resilience.fetch"]
        assert len(fetch_spans) == 1
        assert fetch_spans[0].attrs["outcome"] == "ok"
        assert fetch_spans[0].attrs["source"] == "feed"


class TestFlakyFetch:
    def test_fails_then_succeeds(self):
        fetch = FlakyFetch(lambda: "ok", failures=2)
        for _ in range(2):
            with pytest.raises(SourceUnavailable):
                fetch()
        assert fetch() == "ok"
        assert fetch.calls == 3

    def test_permanent_never_succeeds(self):
        fetch = FlakyFetch(lambda: "ok", permanent=True)
        for _ in range(5):
            with pytest.raises(SourceUnavailable):
                fetch()
