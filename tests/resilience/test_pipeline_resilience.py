"""Pipeline-level resilience: failure isolation, checkpoint/resume,
pre-flight validation, and fault determinism across worker counts.

The configs here are deliberately tiny (one window, no GB pass) so each
full ``run_experiment`` call stays in the seconds range.
"""

import dataclasses

import numpy as np
import pytest

import repro.core.pipeline as pipeline_module
from repro import ExperimentConfig, run_experiment
from repro.core.pipeline import ScenarioFailure, _preflight
from repro.obs import MetricsRegistry, Tracer, get_logger, use_metrics, \
    use_tracer
from repro.resilience import RunCheckpoint, random_fault_plan
from repro.synth import generate_raw_dataset

_ORIGINAL_TASK = pipeline_module._scenario_task

#: Scenario the injected-failure wrapper kills (first in build order).
FAIL_KEY = "2017_7"


def _failing_task(item, config, checkpoint=None):
    key, _scenario = item
    if key == FAIL_KEY:
        raise RuntimeError(f"injected failure for {key}")
    return _ORIGINAL_TASK(item, config, checkpoint=checkpoint)


@pytest.fixture(scope="module")
def tiny_config():
    config = ExperimentConfig.fast()
    return dataclasses.replace(
        config,
        simulation=dataclasses.replace(
            config.simulation, end="2019-12-31"
        ),
        windows=(7,),
        run_gb_validation=False,
        n_jobs=1,
    )


@pytest.fixture(scope="module")
def tiny_raw(tiny_config):
    return generate_raw_dataset(tiny_config.simulation)


@pytest.fixture(scope="module")
def fault_plan():
    return random_fault_plan(
        11, ["sentiment", "macro", "onchain_btc"],
        include_fetch_errors=False,
    )


@pytest.fixture(scope="module")
def faulted_config(tiny_config, fault_plan):
    return dataclasses.replace(
        tiny_config, fault_plan=fault_plan, degradation="fill"
    )


@pytest.fixture(scope="module")
def faulted_serial_results(faulted_config):
    """One uninterrupted serial faulted run, shared by several tests."""
    return run_experiment(faulted_config)


class TestArgumentValidation:
    def test_bad_on_error_rejected(self, tiny_config):
        config = dataclasses.replace(tiny_config, on_error="retry")
        with pytest.raises(ValueError, match="on_error"):
            run_experiment(config)

    def test_bad_degradation_rejected(self, tiny_config):
        config = dataclasses.replace(tiny_config, degradation="hope")
        with pytest.raises(ValueError, match="degradation"):
            run_experiment(config)

    def test_resume_requires_checkpoint_dir(self, tiny_config):
        with pytest.raises(ValueError, match="checkpoint_dir"):
            run_experiment(tiny_config, resume=True)


class TestFailureIsolation:
    def test_capture_keeps_other_scenarios(self, monkeypatch,
                                           tiny_config, tiny_raw):
        monkeypatch.setattr(pipeline_module, "_scenario_task",
                            _failing_task)
        config = dataclasses.replace(tiny_config, on_error="capture")
        results = run_experiment(config, raw=tiny_raw)
        assert set(results.failures) == {FAIL_KEY}
        failure = results.failures[FAIL_KEY]
        assert isinstance(failure, ScenarioFailure)
        assert failure.error_type == "RuntimeError"
        assert "injected failure" in failure.message
        assert "injected failure" in failure.traceback
        assert set(results.artifacts) == {"2019_7"}
        assert len(results.improvements_rf) == 1
        assert not results.complete
        counters = results.run_summary.metrics["counters"]
        assert counters["experiment.scenario_failures"] == 1

    def test_capture_across_process_workers(self, monkeypatch,
                                            tiny_config, tiny_raw):
        monkeypatch.setattr(pipeline_module, "_scenario_task",
                            _failing_task)
        config = dataclasses.replace(
            tiny_config, on_error="capture", n_jobs=2
        )
        results = run_experiment(config, raw=tiny_raw)
        assert set(results.failures) == {FAIL_KEY}
        assert "injected failure" in results.failures[FAIL_KEY].traceback
        assert set(results.artifacts) == {"2019_7"}

    def test_default_raise_aborts_the_run(self, monkeypatch,
                                          tiny_config, tiny_raw):
        monkeypatch.setattr(pipeline_module, "_scenario_task",
                            _failing_task)
        with pytest.raises(RuntimeError, match="injected failure"):
            run_experiment(tiny_config, raw=tiny_raw)

    def test_clean_run_is_complete(self, faulted_serial_results):
        assert faulted_serial_results.complete
        assert faulted_serial_results.failures == {}


class TestDegradedRun:
    def test_degradation_report_attached(self, faulted_serial_results):
        report = faulted_serial_results.degradation
        assert report is not None
        assert report.policy == "fill"
        assert report.total_faults() > 0

    def test_fault_counters_in_run_summary(self, faulted_serial_results):
        counters = faulted_serial_results.run_summary.metrics["counters"]
        fault_counters = [name for name in counters
                          if name.startswith("resilience.fault.")]
        assert fault_counters
        assert counters.get("resilience.filled_values", 0) > 0

    def test_plain_run_has_no_degradation_report(
            self, tiny_config, tiny_raw, faulted_serial_results):
        # raw passed in → resilience assembly never ran
        assert faulted_serial_results.degradation is not None
        results = run_experiment(tiny_config, raw=tiny_raw)
        assert results.degradation is None


class TestFaultDeterminismAcrossJobs:
    def test_results_identical_for_any_n_jobs(
            self, faulted_config, faulted_serial_results):
        parallel = run_experiment(
            dataclasses.replace(faulted_config, n_jobs=2)
        )
        np.testing.assert_array_equal(
            parallel.raw.features.to_matrix(),
            faulted_serial_results.raw.features.to_matrix(),
        )
        assert parallel.improvements_rf == \
            faulted_serial_results.improvements_rf
        assert set(parallel.artifacts) == \
            set(faulted_serial_results.artifacts)
        for key, artifact in parallel.artifacts.items():
            reference = faulted_serial_results.artifacts[key]
            assert artifact.selection.final_features == \
                reference.selection.final_features
            assert artifact.rf_importance == reference.rf_importance


class TestCheckpointResume:
    def test_kill_and_resume_matches_uninterrupted(
            self, monkeypatch, tmp_path, faulted_config,
            faulted_serial_results):
        ckpt = tmp_path / "run"
        # --- the "killed" run: dies after the first scenario lands ----
        with monkeypatch.context() as patch:
            patch.setattr(pipeline_module, "_scenario_task",
                          _failing_task_second)
            with pytest.raises(RuntimeError, match="injected failure"):
                run_experiment(faulted_config,
                               checkpoint_dir=str(ckpt))
        survived = RunCheckpoint(ckpt).completed_keys()
        assert survived == ["2017_7"]

        # --- resume: only the missing scenario is recomputed ----------
        resumed = run_experiment(faulted_config,
                                 checkpoint_dir=str(ckpt), resume=True)
        counters = resumed.run_summary.metrics["counters"]
        assert counters["checkpoint.skipped"] == 1
        assert set(resumed.artifacts) == {"2017_7", "2019_7"}
        assert resumed.improvements_rf == \
            faulted_serial_results.improvements_rf
        for key, artifact in resumed.artifacts.items():
            reference = faulted_serial_results.artifacts[key]
            assert artifact.selection.final_features == \
                reference.selection.final_features
            assert artifact.rf_importance == reference.rf_importance

    def test_resume_with_different_config_refused(self, tmp_path,
                                                  tiny_config, tiny_raw):
        from repro.resilience import CheckpointMismatch

        ckpt = tmp_path / "run"
        run_experiment(tiny_config, raw=tiny_raw,
                       checkpoint_dir=str(ckpt))
        other = dataclasses.replace(
            tiny_config,
            simulation=dataclasses.replace(
                tiny_config.simulation, seed=999
            ),
        )
        with pytest.raises(CheckpointMismatch):
            run_experiment(other, raw=tiny_raw,
                           checkpoint_dir=str(ckpt), resume=True)

    def test_resume_tolerates_jobs_changes(
            self, tmp_path, tiny_config, tiny_raw):
        ckpt = tmp_path / "run"
        run_experiment(tiny_config, raw=tiny_raw,
                       checkpoint_dir=str(ckpt))
        relabelled = dataclasses.replace(tiny_config, n_jobs=2)
        resumed = run_experiment(relabelled, raw=tiny_raw,
                                 checkpoint_dir=str(ckpt), resume=True)
        counters = resumed.run_summary.metrics["counters"]
        assert counters["checkpoint.skipped"] == 2
        assert set(resumed.artifacts) == {"2017_7", "2019_7"}


def _failing_task_second(item, config, checkpoint=None):
    """Complete the first scenario, die on the second — a deterministic
    stand-in for a mid-run kill (the checkpoint for scenario one is
    already on disk when the 'kill' happens)."""
    key, _scenario = item
    if key == "2019_7":
        raise RuntimeError(f"injected failure for {key}")
    return _ORIGINAL_TASK(item, config, checkpoint=checkpoint)


class TestPreflight:
    def _bad_raw(self, tiny_raw):
        column = tiny_raw.features.columns[0]
        poisoned = np.array(tiny_raw.features[column], copy=True)
        poisoned[5] = np.inf
        features = tiny_raw.features.with_column(column, poisoned)
        return dataclasses.replace(tiny_raw, features=features)

    def test_strict_validation_raises_before_any_fitting(
            self, tiny_config, tiny_raw):
        config = dataclasses.replace(tiny_config, strict_validation=True)
        with pytest.raises(ValueError, match="validation failed"):
            run_experiment(config, raw=self._bad_raw(tiny_raw))

    def test_warn_mode_counts_but_does_not_raise(self, tiny_config,
                                                 tiny_raw):
        config = dataclasses.replace(tiny_config,
                                     strict_validation=False)
        metrics = MetricsRegistry()
        tracer = Tracer()
        with use_metrics(metrics), use_tracer(tracer):
            _preflight(self._bad_raw(tiny_raw), config,
                       get_logger("test"), metrics)
        assert metrics.snapshot()["counters"]["preflight.issues"] >= 1

    def test_clean_raw_has_zero_issues(self, faulted_serial_results):
        counters = faulted_serial_results.run_summary.metrics["counters"]
        # fill policy repaired the dataset before preflight saw it, and
        # the preflight rules tolerate the NaNs that remain
        assert "preflight.issues" in counters
        names = [s.name for s in faulted_serial_results.run_summary.spans]
        assert "pipeline.preflight" in names

    def test_validation_can_be_disabled(self, tiny_config, tiny_raw):
        config = dataclasses.replace(
            tiny_config, validate_inputs=False, strict_validation=True
        )
        # bad data + strict, but validation off → no preflight error
        results = run_experiment(config, raw=tiny_raw)
        names = [s.name for s in results.run_summary.spans]
        assert "pipeline.preflight" not in names
