"""Unit tests for repro.resilience.faults."""

import numpy as np
import pytest

from repro.frame import Frame, date_range
from repro.resilience import (
    FaultEvent,
    FaultPlan,
    apply_fault_plan,
    random_fault_plan,
)
from repro.resilience.faults import DATA_FAULT_KINDS, _window

NAN = np.nan


def _frame(n_rows=100, n_cols=4, seed=0):
    rng = np.random.default_rng(seed)
    index = date_range("2020-01-01", periods=n_rows)
    data = {
        f"col_{i}": rng.normal(10.0, 2.0, size=n_rows)
        for i in range(n_cols)
    }
    return Frame(index, data)


class TestFaultEvent:
    def test_roundtrip(self):
        event = FaultEvent(kind="spike", category="macro",
                           start_frac=0.2, duration_frac=0.05,
                           column_frac=0.5, magnitude=6.0, rate=0.3)
        assert FaultEvent.from_dict(event.to_dict()) == event

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultEvent(kind="meteor", category="macro")

    def test_window_bounds_validated(self):
        with pytest.raises(ValueError):
            FaultEvent(kind="outage", category="m", start_frac=1.0)
        with pytest.raises(ValueError):
            FaultEvent(kind="outage", category="m", duration_frac=0.0)
        with pytest.raises(ValueError):
            FaultEvent(kind="outage", category="m", column_frac=1.5)
        with pytest.raises(ValueError):
            FaultEvent(kind="fetch_error", category="m", failures=-1)

    def test_unknown_field_rejected(self):
        with pytest.raises(ValueError, match="unknown FaultEvent fields"):
            FaultEvent.from_dict({"kind": "outage", "category": "m",
                                  "severity": "bad"})


class TestFaultPlan:
    def test_json_roundtrip(self, tmp_path):
        plan = random_fault_plan(7, ["macro", "sentiment"])
        path = plan.save(tmp_path / "plan.json")
        assert FaultPlan.load(path) == plan

    def test_events_must_be_fault_events(self):
        with pytest.raises(TypeError):
            FaultPlan(seed=1, events=({"kind": "outage"},))

    def test_events_for_preserves_plan_indices(self):
        events = (
            FaultEvent(kind="outage", category="a"),
            FaultEvent(kind="spike", category="b"),
            FaultEvent(kind="stale", category="a"),
        )
        plan = FaultPlan(seed=0, events=events)
        assert plan.events_for("a") == [(0, events[0]), (2, events[2])]
        assert plan.events_for("a", ("stale",)) == [(2, events[2])]

    def test_fetch_faults_and_categories(self):
        plan = FaultPlan(seed=0, events=(
            FaultEvent(kind="fetch_error", category="a", failures=1),
            FaultEvent(kind="outage", category="b"),
        ))
        assert [e.kind for e in plan.fetch_faults("a")] == ["fetch_error"]
        assert plan.fetch_faults("b") == []
        assert plan.categories() == ["a", "b"]

    def test_with_seed(self):
        plan = FaultPlan(seed=1, events=(
            FaultEvent(kind="outage", category="a"),
        ))
        assert plan.with_seed(9).seed == 9
        assert plan.with_seed(9).events == plan.events


class TestWindow:
    def test_delisting_extends_to_end(self):
        event = FaultEvent(kind="delisting", category="a", start_frac=0.8)
        start, length = _window(event, 100)
        assert (start, length) == (80, 20)

    def test_window_clamped_to_series(self):
        event = FaultEvent(kind="outage", category="a",
                           start_frac=0.95, duration_frac=0.5)
        start, length = _window(event, 100)
        assert start + length <= 100
        assert length >= 1


class TestApplyFaultPlan:
    def test_outage_nans_the_window(self):
        frame = _frame()
        plan = FaultPlan(seed=3, events=(
            FaultEvent(kind="outage", category="m",
                       start_frac=0.5, duration_frac=0.1),
        ))
        out, injected = apply_fault_plan(frame, "m", plan)
        assert len(injected) == frame.n_cols
        for name in out.columns:
            assert np.isnan(out[name][50:60]).all()
            assert not np.isnan(out[name][:50]).any()
            assert not np.isnan(out[name][60:]).any()

    def test_stale_repeats_window_start_value(self):
        frame = _frame()
        plan = FaultPlan(seed=3, events=(
            FaultEvent(kind="stale", category="m",
                       start_frac=0.2, duration_frac=0.1),
        ))
        out, _ = apply_fault_plan(frame, "m", plan)
        for name in out.columns:
            window = out[name][20:30]
            assert (window == frame[name][20]).all()

    def test_delisting_never_comes_back(self):
        frame = _frame()
        plan = FaultPlan(seed=3, events=(
            FaultEvent(kind="delisting", category="m", start_frac=0.7,
                       column_frac=0.5),
        ))
        out, injected = apply_fault_plan(frame, "m", plan)
        hit = {f.column for f in injected}
        assert len(hit) == 2  # half of 4 columns
        for name in hit:
            assert np.isnan(out[name][70:]).all()
        for name in set(frame.columns) - hit:
            assert not np.isnan(out[name]).any()

    def test_nan_gaps_hits_a_subset(self):
        frame = _frame(n_rows=400)
        plan = FaultPlan(seed=3, events=(
            FaultEvent(kind="nan_gaps", category="m",
                       start_frac=0.1, duration_frac=0.5, rate=0.3),
        ))
        out, injected = apply_fault_plan(frame, "m", plan)
        for fault in injected:
            assert 0 < fault.n_affected < fault.length
            window = out[fault.column][fault.start:
                                       fault.start + fault.length]
            assert int(np.isnan(window).sum()) == fault.n_affected

    def test_spikes_move_values_by_sigmas(self):
        frame = _frame(n_rows=300)
        plan = FaultPlan(seed=3, events=(
            FaultEvent(kind="spike", category="m", start_frac=0.3,
                       duration_frac=0.2, magnitude=10.0, rate=0.1),
        ))
        out, injected = apply_fault_plan(frame, "m", plan)
        changed = sum(
            int((out[name] != frame[name]).sum()) for name in out.columns
        )
        assert changed == sum(f.n_affected for f in injected)
        assert changed > 0

    def test_other_category_untouched(self):
        frame = _frame()
        plan = FaultPlan(seed=3, events=(
            FaultEvent(kind="outage", category="other"),
        ))
        out, injected = apply_fault_plan(frame, "m", plan)
        assert injected == []
        assert out is frame

    def test_fetch_error_not_applied_to_data(self):
        frame = _frame()
        plan = FaultPlan(seed=3, events=(
            FaultEvent(kind="fetch_error", category="m", failures=2),
        ))
        out, injected = apply_fault_plan(frame, "m", plan)
        assert injected == []
        assert out is frame

    def test_deterministic_for_same_seed(self):
        frame = _frame(n_rows=200)
        plan = random_fault_plan(21, ["m"])
        out1, inj1 = apply_fault_plan(frame, "m", plan)
        out2, inj2 = apply_fault_plan(frame, "m", plan)
        assert inj1 == inj2
        for name in out1.columns:
            np.testing.assert_array_equal(out1[name], out2[name])

    def test_seed_changes_draws(self):
        frame = _frame(n_rows=200)
        plan = FaultPlan(seed=5, events=(
            FaultEvent(kind="nan_gaps", category="m",
                       start_frac=0.1, duration_frac=0.6, rate=0.3),
        ))
        out1, _ = apply_fault_plan(frame, "m", plan)
        out2, _ = apply_fault_plan(frame, "m", plan.with_seed(6))
        different = any(
            not np.array_equal(out1[name], out2[name], equal_nan=True)
            for name in out1.columns
        )
        assert different

    def test_adding_an_event_never_perturbs_others(self):
        # The per-event SeedSequence keying means event 0's corruption
        # is identical whether or not event 1 exists.
        frame = _frame(n_rows=200)
        gap_event = FaultEvent(kind="nan_gaps", category="m",
                               start_frac=0.1, duration_frac=0.2,
                               rate=0.4)
        solo = FaultPlan(seed=5, events=(gap_event,))
        paired = FaultPlan(seed=5, events=(
            gap_event,
            FaultEvent(kind="outage", category="m",
                       start_frac=0.8, duration_frac=0.05),
        ))
        out_solo, _ = apply_fault_plan(frame, "m", solo)
        out_paired, _ = apply_fault_plan(frame, "m", paired)
        for name in frame.columns:
            np.testing.assert_array_equal(
                out_solo[name][:160], out_paired[name][:160]
            )

    def test_empty_frame_passthrough(self):
        frame = Frame(date_range("2020-01-01", periods=0), {})
        plan = FaultPlan(seed=0, events=(
            FaultEvent(kind="outage", category="m"),
        ))
        out, injected = apply_fault_plan(frame, "m", plan)
        assert injected == []


class TestRandomFaultPlan:
    def test_deterministic(self):
        a = random_fault_plan(9, ["x", "y"])
        b = random_fault_plan(9, ["x", "y"])
        assert a == b

    def test_contains_delisting_and_fetch_error(self):
        plan = random_fault_plan(9, ["x"])
        kinds = {e.kind for e in plan.events}
        assert "delisting" in kinds
        assert "fetch_error" in kinds

    def test_fetch_errors_can_be_disabled(self):
        plan = random_fault_plan(9, ["x"], include_fetch_errors=False)
        assert all(e.kind != "fetch_error" for e in plan.events)

    def test_all_kinds_valid(self):
        plan = random_fault_plan(9, ["x", "y"], n_events=30)
        assert all(e.kind in DATA_FAULT_KINDS + ("fetch_error",)
                   for e in plan.events)

    def test_empty_categories_rejected(self):
        with pytest.raises(ValueError):
            random_fault_plan(1, [])
        with pytest.raises(ValueError):
            random_fault_plan(1, ["x"], n_events=0)
