"""Tests for resilient dataset assembly under degradation policies."""

import numpy as np
import pytest

from repro.resilience import (
    FaultEvent,
    FaultPlan,
    RetryPolicy,
    SourceUnavailable,
    resilient_raw_dataset,
)
from repro.synth import SimulationConfig, generate_raw_dataset

@pytest.fixture(scope="module")
def sim_config():
    return SimulationConfig(start="2017-01-01", end="2018-06-30",
                            seed=42, n_assets=105)


def _no_sleep():
    return {"sleep": lambda seconds: None}


class TestCleanPath:
    def test_no_plan_matches_plain_generation(self, sim_config):
        plain = generate_raw_dataset(sim_config)
        raw, report = resilient_raw_dataset(sim_config, **_no_sleep())
        assert report.ok
        assert report.total_faults() == 0
        assert raw.features.columns == plain.features.columns
        np.testing.assert_array_equal(
            raw.features.to_matrix(), plain.features.to_matrix()
        )

    def test_transient_failure_recovers(self, sim_config):
        plan = FaultPlan(seed=1, events=(
            FaultEvent(kind="fetch_error", category="macro", failures=2),
        ))
        plain = generate_raw_dataset(sim_config)
        raw, report = resilient_raw_dataset(
            sim_config, plan=plan, **_no_sleep()
        )
        outcome = {o.category: o for o in report.outcomes}["macro"]
        assert outcome.status == "recovered"
        assert outcome.attempts == 3
        assert report.total_retries() == 2
        # recovery is invisible in the data itself
        np.testing.assert_array_equal(
            raw.features.to_matrix(), plain.features.to_matrix()
        )


class TestAbortPolicy:
    def test_permanent_failure_aborts(self, sim_config):
        plan = FaultPlan(seed=1, events=(
            FaultEvent(kind="fetch_error", category="macro",
                       permanent=True),
        ))
        with pytest.raises(SourceUnavailable):
            resilient_raw_dataset(sim_config, plan=plan, policy="abort",
                                  retry=RetryPolicy(max_attempts=2),
                                  **_no_sleep())

    def test_corruption_passes_through_untouched(self, sim_config):
        plan = FaultPlan(seed=1, events=(
            FaultEvent(kind="outage", category="macro",
                       start_frac=0.4, duration_frac=0.1),
        ))
        raw, report = resilient_raw_dataset(
            sim_config, plan=plan, policy="abort", **_no_sleep()
        )
        outcome = {o.category: o for o in report.outcomes}["macro"]
        assert outcome.status == "degraded"
        assert outcome.faults  # corruption recorded, not repaired
        nan_total = int(np.isnan(raw.features.to_matrix()).sum())
        assert nan_total > 0


class TestDropCategoryPolicy:
    def test_dead_source_is_excluded(self, sim_config):
        plan = FaultPlan(seed=1, events=(
            FaultEvent(kind="fetch_error", category="macro",
                       permanent=True),
        ))
        raw, report = resilient_raw_dataset(
            sim_config, plan=plan, policy="drop-category",
            retry=RetryPolicy(max_attempts=2), **_no_sleep()
        )
        assert report.dropped_categories() == ["macro"]
        assert not any(
            category.value == "macro"
            for category in raw.categories.values()
        )
        plain = generate_raw_dataset(sim_config)
        assert raw.features.n_cols < plain.features.n_cols

    def test_every_source_dead_raises(self, sim_config):
        events = tuple(
            FaultEvent(kind="fetch_error", category=c, permanent=True)
            for c in ("technical", "onchain_btc", "onchain_usdc",
                      "sentiment", "tradfi", "macro")
        )
        with pytest.raises(SourceUnavailable, match="every data source"):
            resilient_raw_dataset(
                sim_config, plan=FaultPlan(seed=1, events=events),
                policy="drop-category",
                retry=RetryPolicy(max_attempts=1), **_no_sleep()
            )


class TestFillPolicy:
    def test_fill_repairs_corruption(self, sim_config):
        plan = FaultPlan(seed=1, events=(
            FaultEvent(kind="outage", category="macro",
                       start_frac=0.4, duration_frac=0.1),
        ))
        raw, report = resilient_raw_dataset(
            sim_config, plan=plan, policy="fill", **_no_sleep()
        )
        outcome = {o.category: o for o in report.outcomes}["macro"]
        assert outcome.status == "filled"
        assert outcome.filled_values > 0

    def test_fill_limit_caps_repair_length(self, sim_config):
        plan = FaultPlan(seed=1, events=(
            FaultEvent(kind="outage", category="macro",
                       start_frac=0.4, duration_frac=0.2),
        ))
        _, unlimited = resilient_raw_dataset(
            sim_config, plan=plan, policy="fill", **_no_sleep()
        )
        _, limited = resilient_raw_dataset(
            sim_config, plan=plan, policy="fill", fill_limit=3,
            **_no_sleep()
        )
        def total(rep):
            return sum(o.filled_values for o in rep.outcomes)

        assert 0 < total(limited) < total(unlimited)


class TestDeterminism:
    def test_bit_identical_across_calls(self, sim_config):
        plan = FaultPlan(seed=5, events=(
            FaultEvent(kind="nan_gaps", category="sentiment",
                       start_frac=0.1, duration_frac=0.5, rate=0.3),
            FaultEvent(kind="spike", category="tradfi",
                       start_frac=0.3, duration_frac=0.2,
                       magnitude=9.0, rate=0.2),
        ))
        raw1, _ = resilient_raw_dataset(sim_config, plan=plan,
                                        policy="fill", **_no_sleep())
        raw2, _ = resilient_raw_dataset(sim_config, plan=plan,
                                        policy="fill", **_no_sleep())
        assert raw1.features.columns == raw2.features.columns
        np.testing.assert_array_equal(
            raw1.features.to_matrix(), raw2.features.to_matrix()
        )

    def test_report_serialises(self, sim_config):
        import json

        plan = FaultPlan(seed=5, events=(
            FaultEvent(kind="outage", category="macro",
                       start_frac=0.2, duration_frac=0.05),
        ))
        _, report = resilient_raw_dataset(sim_config, plan=plan,
                                          policy="fill", **_no_sleep())
        payload = json.dumps(report.to_dict())
        assert "macro" in payload
        assert "filled" in payload


class TestValidation:
    def test_unknown_policy_rejected(self, sim_config):
        with pytest.raises(ValueError, match="unknown degradation"):
            resilient_raw_dataset(sim_config, policy="pray")
