"""Tests for chaos runs (clean vs faulted MSE comparison)."""

import dataclasses

import pytest

from repro import ExperimentConfig
from repro.resilience import (
    CategoryDegradation,
    ChaosReport,
    FaultPlan,
    random_fault_plan,
    render_chaos_table,
    run_chaos,
)


class TestCategoryDegradation:
    def test_pct_change(self):
        row = CategoryDegradation("macro", clean_mse=2.0, faulted_mse=2.5)
        assert row.pct_change == pytest.approx(25.0)

    def test_pct_change_undefined_for_dropped(self):
        assert CategoryDegradation("m", 2.0, None).pct_change is None
        assert CategoryDegradation("m", None, 2.5).pct_change is None
        assert CategoryDegradation("m", 0.0, 2.5).pct_change is None


class TestRenderChaosTable:
    def _report(self, **overrides):
        base = dict(
            plan=random_fault_plan(3, ["macro"]),
            policy="fill",
            rows=[
                CategoryDegradation("diverse", 1.0, 1.2),
                CategoryDegradation("macro", 2.0, None),
            ],
            n_scenarios_compared=4,
        )
        base.update(overrides)
        return ChaosReport(**base)

    def test_table_contains_rows_and_header(self):
        table = render_chaos_table(self._report())
        assert "policy=fill" in table
        assert "4 scenarios" in table
        assert "diverse (final vector)" in table
        assert "+20.0%" in table
        assert "dropped" in table  # macro's faulted MSE is None

    def test_failures_listed(self):
        table = render_chaos_table(self._report(
            failures={"2017_30": "RuntimeError: boom"}
        ))
        assert "failed scenarios:" in table
        assert "2017_30: RuntimeError: boom" in table

    def test_counters_listed(self):
        table = render_chaos_table(self._report(
            counters={"resilience.retry": 3}
        ))
        assert "resilience counters:" in table
        assert "resilience.retry = 3" in table


class TestRunChaos:
    @pytest.fixture(scope="class")
    def chaos_report(self):
        config = ExperimentConfig.fast()
        config = dataclasses.replace(
            config,
            simulation=dataclasses.replace(
                config.simulation, end="2019-12-31"
            ),
            windows=(7,),
            run_gb_validation=False,
            n_jobs=1,
        )
        plan = random_fault_plan(
            11, ["sentiment", "macro", "onchain_btc"],
            include_fetch_errors=False,
        )
        return run_chaos(config, plan, policy="fill")

    def test_compares_all_scenarios(self, chaos_report):
        assert chaos_report.n_scenarios_compared == 2
        assert chaos_report.policy == "fill"
        assert chaos_report.failures == {}

    def test_diverse_row_first_then_categories(self, chaos_report):
        labels = [row.label for row in chaos_report.rows]
        assert labels[0] == "diverse"
        assert len(labels) > 1
        assert all(
            row.clean_mse is not None and row.faulted_mse is not None
            for row in chaos_report.rows
        )

    def test_resilience_counters_surface(self, chaos_report):
        assert any(name.startswith("resilience.fault.")
                   for name in chaos_report.counters)
        assert chaos_report.counters.get(
            "resilience.filled_values", 0) > 0

    def test_degradation_report_carried(self, chaos_report):
        assert chaos_report.degradation.policy == "fill"
        assert chaos_report.degradation.total_faults() > 0

    def test_table_renders(self, chaos_report):
        table = render_chaos_table(chaos_report)
        assert "clean MSE" in table
        assert "faulted MSE" in table
        assert "degradation: policy=fill" in table

    def test_unknown_model_rejected(self, chaos_report):
        from repro.resilience.chaos import _improvements

        with pytest.raises(ValueError, match="unknown model"):
            _improvements(None, "svm")

    def test_runtimes_recorded(self, chaos_report):
        assert chaos_report.clean_runtime > 0
        assert chaos_report.faulted_runtime > 0


class TestPlanHandling:
    def test_empty_plan_compares_identical_runs(self):
        # Not a full run — just the report shape for a no-event plan.
        report = ChaosReport(plan=FaultPlan(), policy="abort")
        table = render_chaos_table(report)
        assert "0 fault events" in table
