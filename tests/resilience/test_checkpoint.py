"""Tests for atomic checkpoint/resume storage."""

import pickle

import pytest

from repro.resilience import (
    CheckpointMismatch,
    RunCheckpoint,
    config_fingerprint,
)


class TestFingerprint:
    def test_stable_for_equal_configs(self):
        from repro import ExperimentConfig

        a = ExperimentConfig.fast()
        b = ExperimentConfig.fast()
        assert config_fingerprint(a) == config_fingerprint(b)

    def test_differs_across_configs(self):
        from repro import ExperimentConfig

        a = ExperimentConfig.fast(seed=1)
        b = ExperimentConfig.fast(seed=2)
        assert config_fingerprint(a) != config_fingerprint(b)


class TestRunCheckpoint:
    def test_save_load_roundtrip(self, tmp_path):
        cp = RunCheckpoint(tmp_path)
        cp.initialise("abc123")
        payload = ("2017_7", {"mse": 1.25}, [1, 2, 3])
        cp.save_scenario("2017_7", payload)
        assert cp.load_scenario("2017_7") == payload
        assert cp.completed_keys() == ["2017_7"]

    def test_missing_scenario_raises_keyerror(self, tmp_path):
        cp = RunCheckpoint(tmp_path)
        cp.initialise("abc123")
        with pytest.raises(KeyError):
            cp.load_scenario("2019_90")

    def test_resume_without_manifest_refused(self, tmp_path):
        cp = RunCheckpoint(tmp_path / "never-created")
        with pytest.raises(CheckpointMismatch, match="no manifest"):
            cp.initialise("abc123", resume=True)

    def test_resume_with_wrong_fingerprint_refused(self, tmp_path):
        RunCheckpoint(tmp_path).initialise("fingerprint-a")
        with pytest.raises(CheckpointMismatch,
                           match="different configuration"):
            RunCheckpoint(tmp_path).initialise("fingerprint-b",
                                               resume=True)

    def test_resume_with_matching_fingerprint_keeps_artifacts(
            self, tmp_path):
        first = RunCheckpoint(tmp_path)
        first.initialise("same")
        first.save_scenario("2017_7", "artifact")
        second = RunCheckpoint(tmp_path)
        second.initialise("same", resume=True)
        assert second.completed_keys() == ["2017_7"]
        assert second.load_scenario("2017_7") == "artifact"

    def test_fresh_run_with_new_config_discards_stale_artifacts(
            self, tmp_path):
        old = RunCheckpoint(tmp_path)
        old.initialise("old-config")
        old.save_scenario("2017_7", "stale")
        fresh = RunCheckpoint(tmp_path)
        fresh.initialise("new-config")  # not a resume: takes over
        assert fresh.completed_keys() == []

    def test_corrupt_artifact_treated_as_absent(self, tmp_path):
        cp = RunCheckpoint(tmp_path)
        cp.initialise("abc")
        path = cp.save_scenario("2017_7", "good")
        path.write_bytes(b"definitely not a pickle")
        assert cp.completed_keys() == []
        with pytest.raises(KeyError):
            cp.load_scenario("2017_7")

    def test_truncated_artifact_treated_as_absent(self, tmp_path):
        cp = RunCheckpoint(tmp_path)
        cp.initialise("abc")
        path = cp.save_scenario("2017_7", list(range(1000)))
        blob = path.read_bytes()
        path.write_bytes(blob[: len(blob) // 2])  # simulated torn write
        assert cp.completed_keys() == []

    def test_key_sanitised_for_filesystem(self, tmp_path):
        cp = RunCheckpoint(tmp_path)
        cp.initialise("abc")
        cp.save_scenario("2017/7:weird key", "value")
        assert cp.load_scenario("2017/7:weird key") == "value"
        names = [p.name for p in tmp_path.iterdir()]
        assert all("/" not in n and ":" not in n for n in names)

    def test_checkpoint_is_picklable(self, tmp_path):
        cp = RunCheckpoint(tmp_path)
        cp.initialise("abc")
        clone = pickle.loads(pickle.dumps(cp))
        clone.save_scenario("2017_7", "from-clone")
        assert cp.load_scenario("2017_7") == "from-clone"

    def test_atomic_write_leaves_no_temp_files(self, tmp_path):
        cp = RunCheckpoint(tmp_path)
        cp.initialise("abc")
        cp.save_scenario("a", 1)
        cp.save_scenario("a", 2)  # overwrite
        leftovers = [p for p in tmp_path.iterdir()
                     if p.name.endswith(".tmp")]
        assert leftovers == []
        assert cp.load_scenario("a") == 2


class TestCheckpointIntegrity:
    def test_scenario_files_are_framed(self, tmp_path):
        from repro.cache.codec import FRAME_MAGIC

        cp = RunCheckpoint(tmp_path)
        cp.initialise("abc")
        path = cp.save_scenario("2017_7", {"mse": 1.0})
        assert path.read_bytes().startswith(FRAME_MAGIC)

    def test_flipped_byte_quarantined_and_counted(self, tmp_path):
        from repro.obs import MetricsRegistry, use_metrics

        cp = RunCheckpoint(tmp_path)
        cp.initialise("abc")
        path = cp.save_scenario("2017_7", list(range(200)))
        blob = bytearray(path.read_bytes())
        blob[len(blob) // 2] ^= 0x01  # a single flipped bit
        path.write_bytes(bytes(blob))
        registry = MetricsRegistry()
        with use_metrics(registry):
            assert cp.completed_keys() == []  # recompute, don't trust
        assert not path.exists()
        quarantined = tmp_path / "quarantine" / path.name
        assert quarantined.exists()
        counters = registry.snapshot()["counters"]
        assert counters["checkpoint.corrupt"] == 1

    def test_quarantined_file_does_not_resurface(self, tmp_path):
        cp = RunCheckpoint(tmp_path)
        cp.initialise("abc")
        path = cp.save_scenario("2017_7", "value")
        path.write_bytes(b"RPAF" + b"\x00" * 60)  # mangled frame
        assert cp.completed_keys() == []
        # the quarantine/ subdir must not look like a scenario artifact
        assert cp.completed_keys() == []
        cp.save_scenario("2017_7", "recomputed")
        assert cp.load_scenario("2017_7") == "recomputed"

    def test_legacy_bare_pickle_checkpoint_loads(self, tmp_path):
        cp = RunCheckpoint(tmp_path)
        cp.initialise("abc")
        path = cp.save_scenario("2017_7", "placeholder")
        path.write_bytes(pickle.dumps(
            {"key": "2017_7", "payload": "pre-frame artifact"}
        ))
        assert cp.load_scenario("2017_7") == "pre-frame artifact"
        assert cp.completed_keys() == ["2017_7"]
