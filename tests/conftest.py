"""Repository-wide shared fixtures.

The small simulated dataset is used by test modules across packages
(synth generators, frame validation, core pipeline pieces); hosting it
here keeps it session-scoped and built exactly once.
"""

import pytest

from repro.synth import SimulationConfig, generate_raw_dataset


@pytest.fixture(scope="session")
def small_config():
    """Two simulated years — enough structure, fast to generate."""
    return SimulationConfig(
        start="2018-01-01", end="2019-12-31", seed=123, n_assets=110,
    )


@pytest.fixture(scope="session")
def small_raw(small_config):
    return generate_raw_dataset(small_config)
