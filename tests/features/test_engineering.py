"""Unit tests for repro.features.engineering."""

import numpy as np
import pytest

from repro.features import (
    interaction_features,
    lag_features,
    rolling_features,
)
from repro.frame import Frame, date_range


@pytest.fixture
def frame():
    idx = date_range("2020-01-01", periods=10)
    return Frame(idx, {
        "price": np.arange(10.0) + 1.0,
        "volume": np.arange(10.0) * 2 + 1.0,
    })


class TestLagFeatures:
    def test_names_and_values(self, frame):
        out = lag_features(frame, ["price"], lags=[1, 3])
        assert out.columns == ["price_lag1", "price_lag3"]
        assert np.isnan(out["price_lag1"][0])
        assert out["price_lag1"][1] == 1.0
        assert out["price_lag3"][3] == 1.0

    def test_all_columns_default(self, frame):
        out = lag_features(frame, lags=[1])
        assert set(out.columns) == {"price_lag1", "volume_lag1"}

    def test_index_preserved(self, frame):
        assert lag_features(frame, lags=[2]).index == frame.index

    def test_no_lookahead(self, frame):
        """Every engineered value uses only past observations."""
        out = lag_features(frame, ["price"], lags=[1])
        lagged = out["price_lag1"]
        for t in range(1, 10):
            assert lagged[t] == frame["price"][t - 1]

    def test_validation(self, frame):
        with pytest.raises(ValueError):
            lag_features(frame, lags=[])
        with pytest.raises(ValueError):
            lag_features(frame, lags=[0])
        with pytest.raises(ValueError):
            lag_features(frame, lags=[-1])
        with pytest.raises(KeyError):
            lag_features(frame, ["missing"], lags=[1])


class TestRollingFeatures:
    def test_names_and_values(self, frame):
        out = rolling_features(frame, ["price"], windows=[3],
                               stats=["mean"])
        assert out.columns == ["price_roll3_mean"]
        assert out["price_roll3_mean"][2] == pytest.approx(2.0)

    def test_multiple_stats(self, frame):
        out = rolling_features(frame, ["price"], windows=[2],
                               stats=["min", "max", "sum", "std"])
        assert out.n_cols == 4
        assert out["price_roll2_min"][1] == 1.0
        assert out["price_roll2_max"][1] == 2.0
        assert out["price_roll2_sum"][1] == 3.0

    def test_warmup_nans(self, frame):
        out = rolling_features(frame, ["price"], windows=[4],
                               stats=["mean"])
        assert np.isnan(out["price_roll4_mean"][:3]).all()

    def test_validation(self, frame):
        with pytest.raises(ValueError):
            rolling_features(frame, windows=[])
        with pytest.raises(ValueError):
            rolling_features(frame, windows=[0])
        with pytest.raises(ValueError):
            rolling_features(frame, stats=["median"])
        with pytest.raises(ValueError):
            rolling_features(frame, stats=[])


class TestInteractionFeatures:
    def test_ratio(self, frame):
        out = interaction_features(frame, [("price", "volume")],
                                   ops=["ratio"])
        assert out.columns == ["price_ratio_volume"]
        assert out["price_ratio_volume"][0] == pytest.approx(1.0)

    def test_ratio_zero_denominator_nan(self):
        idx = date_range("2020-01-01", periods=2)
        f = Frame(idx, {"a": [1.0, 1.0], "b": [0.0, 2.0]})
        out = interaction_features(f, [("a", "b")], ops=["ratio"])
        assert np.isnan(out["a_ratio_b"][0])
        assert out["a_ratio_b"][1] == 0.5

    def test_product(self, frame):
        out = interaction_features(frame, [("price", "volume")],
                                   ops=["product"])
        assert np.allclose(
            out["price_product_volume"],
            frame["price"] * frame["volume"],
        )

    def test_spread_is_zscore_difference(self, frame):
        out = interaction_features(frame, [("price", "volume")],
                                   ops=["spread"])
        spread = out["price_spread_volume"]
        # both columns are linear ramps -> identical z-scores -> zero
        assert np.allclose(spread, 0.0, atol=1e-12)

    def test_multiple_ops_and_pairs(self, frame):
        out = interaction_features(
            frame,
            [("price", "volume"), ("volume", "price")],
            ops=["ratio", "product"],
        )
        assert out.n_cols == 4

    def test_validation(self, frame):
        with pytest.raises(ValueError):
            interaction_features(frame, [])
        with pytest.raises(ValueError):
            interaction_features(frame, [("price", "volume")],
                                 ops=["power"])
        with pytest.raises(KeyError):
            interaction_features(frame, [("price", "nope")])


class TestPipelineComposition:
    def test_concat_with_original(self, frame):
        from repro.frame import concat_columns

        engineered = lag_features(frame, ["price"], lags=[1])
        combined = concat_columns(frame, engineered)
        assert combined.n_cols == 3
        assert "price_lag1" in combined.columns

    def test_cross_category_interaction_improves_fit(self):
        """An engineered ratio can expose signal neither input has alone
        — the relationship-discovery effect §5 hypothesises."""
        rng = np.random.default_rng(0)
        n = 400
        a = np.exp(rng.normal(size=n))
        b = np.exp(rng.normal(size=n))
        y = a / b  # the target IS the hidden relationship
        idx = date_range("2020-01-01", periods=n)
        f = Frame(idx, {"a": a, "b": b})
        eng = interaction_features(f, [("a", "b")], ops=["ratio"])

        from repro.ml import DecisionTreeRegressor, mean_squared_error

        raw_model = DecisionTreeRegressor(max_depth=4).fit(
            f.to_matrix(), y
        )
        eng_model = DecisionTreeRegressor(max_depth=4).fit(
            eng.to_matrix(), y
        )
        mse_raw = mean_squared_error(y, raw_model.predict(f.to_matrix()))
        mse_eng = mean_squared_error(y, eng_model.predict(eng.to_matrix()))
        assert mse_eng < mse_raw * 0.5
