"""Memoised predict compilation: cached artifacts must predict identically."""

import numpy as np
import pytest

from repro.cache import CacheStore, compile_cached, compiled_key, use_cache
from repro.ml import GradientBoostingRegressor, RandomForestRegressor
from repro.ml.compiled import CompiledEnsemble, compile_ensemble
from repro.obs import MetricsRegistry, use_metrics


@pytest.fixture(scope="module")
def data():
    rng = np.random.default_rng(5)
    X = rng.normal(size=(100, 5))
    y = X[:, 0] - X[:, 1] * X[:, 2] + 0.1 * rng.normal(size=100)
    return X, y


@pytest.fixture
def store(tmp_path):
    return CacheStore(tmp_path / "cache")


class TestCompiledKey:
    def test_stable_for_same_fit(self, data):
        X, y = data
        a = RandomForestRegressor(n_estimators=3, random_state=0).fit(X, y)
        b = RandomForestRegressor(n_estimators=3, random_state=0).fit(X, y)
        assert compiled_key(a) == compiled_key(b)

    def test_differs_across_fits_and_tags(self, data):
        X, y = data
        a = RandomForestRegressor(n_estimators=3, random_state=0).fit(X, y)
        b = RandomForestRegressor(n_estimators=3, random_state=1).fit(X, y)
        assert compiled_key(a) != compiled_key(b)
        assert compiled_key(a) != compiled_key(a, tag="other")

    def test_splitter_changes_key(self, data):
        X, y = data
        exact = GradientBoostingRegressor(
            n_estimators=3, splitter="exact", random_state=0).fit(X, y)
        hist = GradientBoostingRegressor(
            n_estimators=3, splitter="hist", random_state=0).fit(X, y)
        assert compiled_key(exact) != compiled_key(hist)


class TestCompileCached:
    def test_no_store_plain_compile(self, data):
        X, y = data
        est = RandomForestRegressor(n_estimators=3, random_state=0).fit(X, y)
        compiled = compile_cached(est)
        assert isinstance(compiled, CompiledEnsemble)
        assert np.array_equal(compiled.predict(X),
                              compile_ensemble(est).predict(X))

    @pytest.mark.parametrize("splitter", ["exact", "hist"])
    def test_hit_predicts_identically(self, data, store, splitter):
        X, y = data
        est = GradientBoostingRegressor(
            n_estimators=4, max_depth=3, splitter=splitter, random_state=0
        ).fit(X, y)
        with use_cache(store):
            miss = compile_cached(est)
            hit = compile_cached(est)
        assert hit is not miss
        assert hit.has_bins == miss.has_bins
        assert np.array_equal(hit.predict(X), miss.predict(X))

    def test_counters_reflect_miss_then_hit(self, data, store):
        X, y = data
        est = RandomForestRegressor(n_estimators=3, random_state=0).fit(X, y)
        registry = MetricsRegistry()
        with use_metrics(registry), use_cache(store):
            compile_cached(est)
            compile_cached(est)
        counters = registry.snapshot()["counters"]
        assert counters["cache.misses"] == 1
        assert counters["cache.hits"] == 1
        assert counters["predict.compile_builds"] == 1

    def test_corrupt_payload_falls_back_to_compile(self, data, store):
        X, y = data
        est = RandomForestRegressor(n_estimators=3, random_state=0).fit(X, y)
        store.put(compiled_key(est), {"schema": "bogus"})
        with use_cache(store):
            compiled = compile_cached(est)
        assert np.array_equal(compiled.predict(X),
                              compile_ensemble(est).predict(X))
