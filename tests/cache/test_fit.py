"""Memoised fitting: hits must be bit-identical to refitting."""

import numpy as np
import pytest

from repro.cache import CacheStore, fit_cached, use_cache
from repro.ml import GradientBoostingRegressor, RandomForestRegressor
from repro.obs import MetricsRegistry, use_metrics


@pytest.fixture(scope="module")
def data():
    rng = np.random.default_rng(1)
    X = rng.normal(size=(120, 5))
    y = X[:, 0] - 2 * X[:, 1] + 0.1 * rng.normal(size=120)
    return X, y


@pytest.fixture
def store(tmp_path):
    return CacheStore(tmp_path / "cache")


class TestFitCached:
    def test_no_store_is_plain_fit(self, data):
        X, y = data
        model = RandomForestRegressor(n_estimators=4, random_state=0)
        fitted = fit_cached(model, X, y)
        assert fitted is model
        assert len(fitted.estimators_) == 4

    def test_hit_bit_identical_to_refit(self, data, store):
        X, y = data
        def make():
            return RandomForestRegressor(n_estimators=5, max_depth=6,
                                         random_state=3)
        with use_cache(store):
            first = fit_cached(make(), X, y)
            second = fit_cached(make(), X, y)
        assert np.array_equal(first.predict(X), second.predict(X))
        assert np.array_equal(first.feature_importances_,
                              second.feature_importances_)

    def test_hit_leaves_passed_instance_unfitted(self, data, store):
        X, y = data
        with use_cache(store):
            fit_cached(GradientBoostingRegressor(n_estimators=4,
                                                 random_state=0), X, y)
            fresh = GradientBoostingRegressor(n_estimators=4,
                                              random_state=0)
            returned = fit_cached(fresh, X, y)
        assert returned is not fresh

    def test_counters_reflect_miss_then_hit(self, data, store):
        X, y = data
        registry = MetricsRegistry()
        with use_metrics(registry), use_cache(store):
            fit_cached(RandomForestRegressor(n_estimators=3,
                                             random_state=0), X, y)
            fit_cached(RandomForestRegressor(n_estimators=3,
                                             random_state=0), X, y)
        counters = registry.snapshot()["counters"]
        assert counters["cache.misses"] == 1
        assert counters["cache.hits"] == 1
        assert counters["cache.writes"] == 1

    def test_different_params_do_not_collide(self, data, store):
        X, y = data
        with use_cache(store):
            a = fit_cached(RandomForestRegressor(n_estimators=3,
                                                 random_state=0), X, y)
            b = fit_cached(RandomForestRegressor(n_estimators=6,
                                                 random_state=0), X, y)
        assert len(a.estimators_) == 3
        assert len(b.estimators_) == 6

    def test_corrupt_artifact_falls_back_to_refit(self, data, store):
        from repro.cache.keys import model_fit_key

        X, y = data
        model = RandomForestRegressor(n_estimators=3, random_state=0)
        key = model_fit_key(model, X, y)
        store.put(key, {"not": "a model payload"})
        with use_cache(store):
            fitted = fit_cached(
                RandomForestRegressor(n_estimators=3, random_state=0), X, y
            )
        assert len(fitted.estimators_) == 3
