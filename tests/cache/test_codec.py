"""Tests for the framed artifact codec shared by cache and checkpoints."""

import pickle
import sys
import types

import pytest

from repro.cache.codec import (
    FRAME_MAGIC,
    CorruptArtifact,
    StaleArtifact,
    atomic_write_bytes,
    dump_artifact,
    frame,
    is_framed,
    load_artifact,
    quarantine_entry,
    unframe,
)


class TestRoundTrip:
    @pytest.mark.parametrize("payload", [
        {"rows": [1, 2, 3]},
        list(range(1000)),
        "text",
        b"\x00" * 64,
        None,
        ("nested", {"deep": [1.5, float("inf")]}),
    ])
    def test_dump_load_identity(self, payload):
        assert load_artifact(dump_artifact(payload)) == payload

    def test_framed_blobs_carry_the_magic(self):
        blob = dump_artifact(123)
        assert is_framed(blob)
        assert blob.startswith(FRAME_MAGIC)

    def test_frame_unframe_raw_bytes(self):
        payload = b"arbitrary bytes, not a pickle"
        assert unframe(frame(payload)) == payload


class TestEverySingleByteFlipIsDetected:
    def test_flip_any_byte_raises_corrupt(self):
        # The acceptance criterion verbatim: a flipped byte anywhere —
        # magic, version, digest, length, or payload — never loads.
        blob = dump_artifact({"value": list(range(10))})
        for position in range(len(blob)):
            damaged = bytearray(blob)
            damaged[position] ^= 0xFF
            with pytest.raises(CorruptArtifact):
                load_artifact(bytes(damaged))

    def test_truncation_at_any_length_raises_corrupt(self):
        blob = dump_artifact(list(range(50)))
        for length in range(len(blob)):
            with pytest.raises(CorruptArtifact):
                load_artifact(blob[:length])

    def test_appended_garbage_is_detected(self):
        blob = dump_artifact("payload")
        with pytest.raises(CorruptArtifact, match="length-mismatch"):
            load_artifact(blob + b"trailing")

    def test_reason_slugs(self):
        blob = dump_artifact("x")
        with pytest.raises(CorruptArtifact) as excinfo:
            load_artifact(blob[:8])
        assert excinfo.value.reason == "truncated-header"
        damaged = bytearray(blob)
        damaged[-1] ^= 0x01  # payload bit
        with pytest.raises(CorruptArtifact) as excinfo:
            load_artifact(bytes(damaged))
        assert excinfo.value.reason == "digest-mismatch"
        versioned = bytearray(blob)
        versioned[4] = 99  # unknown schema version
        with pytest.raises(CorruptArtifact) as excinfo:
            load_artifact(bytes(versioned))
        assert excinfo.value.reason == "unknown-version"


class TestStaleVsCorrupt:
    def _ghost_blob(self):
        """A valid frame whose payload references a vanished module."""
        module = types.ModuleType("repro_test_ghost_module")

        class Ghost:
            pass

        Ghost.__module__ = "repro_test_ghost_module"
        Ghost.__qualname__ = "Ghost"
        module.Ghost = Ghost
        sys.modules["repro_test_ghost_module"] = module
        try:
            return dump_artifact(Ghost())
        finally:
            del sys.modules["repro_test_ghost_module"]

    def test_vanished_class_is_stale_not_corrupt(self):
        with pytest.raises(StaleArtifact):
            load_artifact(self._ghost_blob())

    def test_stale_legacy_blob(self):
        blob = self._ghost_blob()
        legacy = unframe(blob)  # bare pickle, digest-valid
        with pytest.raises(StaleArtifact):
            load_artifact(legacy)


class TestLegacyReadBack:
    def test_bare_pickle_loads_transparently(self):
        legacy = pickle.dumps({"old": "entry"},
                              protocol=pickle.HIGHEST_PROTOCOL)
        assert not is_framed(legacy)
        assert load_artifact(legacy) == {"old": "entry"}

    def test_legacy_garbage_is_corrupt(self):
        with pytest.raises(CorruptArtifact) as excinfo:
            load_artifact(b"definitely not a pickle")
        assert excinfo.value.reason == "legacy-unreadable"

    def test_empty_blob_is_corrupt(self):
        with pytest.raises(CorruptArtifact):
            load_artifact(b"")


class TestQuarantine:
    def test_moves_the_file_keeping_its_name(self, tmp_path):
        entry = tmp_path / "ab" / "abcd.pkl"
        entry.parent.mkdir()
        entry.write_bytes(b"damaged")
        moved = quarantine_entry(entry, tmp_path)
        assert moved == tmp_path / "quarantine" / "abcd.pkl"
        assert moved.read_bytes() == b"damaged"
        assert not entry.exists()

    def test_second_corruption_overwrites_the_first(self, tmp_path):
        shard = tmp_path / "ab"
        shard.mkdir()
        for content in (b"first", b"second"):
            entry = shard / "abcd.pkl"
            entry.write_bytes(content)
            moved = quarantine_entry(entry, tmp_path)
        assert moved.read_bytes() == b"second"
        assert len(list((tmp_path / "quarantine").iterdir())) == 1


class TestAtomicWrite:
    def test_writes_and_replaces(self, tmp_path):
        target = tmp_path / "artifact.bin"
        atomic_write_bytes(target, b"one")
        atomic_write_bytes(target, b"two")
        assert target.read_bytes() == b"two"
        assert [p.name for p in tmp_path.iterdir()] == ["artifact.bin"]
