"""Unit tests for the content-addressed store and its context plumbing."""

import pickle

import pytest

from repro.cache import CacheStore, current_cache, use_cache
from repro.obs import MetricsRegistry, use_metrics

KEY_A = "ab" + "0" * 62
KEY_B = "cd" + "1" * 62


@pytest.fixture
def store(tmp_path):
    return CacheStore(tmp_path / "cache")


class TestStore:
    def test_roundtrip(self, store):
        store.put(KEY_A, {"rows": [1, 2, 3]})
        assert store.get(KEY_A) == {"rows": [1, 2, 3]}

    def test_miss_returns_default(self, store):
        assert store.get(KEY_A) is None
        assert store.get(KEY_A, default="fallback") == "fallback"

    def test_sharded_layout(self, store):
        store.put(KEY_A, 1)
        assert (store.directory / KEY_A[:2] / f"{KEY_A}.pkl").is_file()

    def test_non_hex_key_rejected(self, store):
        with pytest.raises(ValueError, match="hex"):
            store.put("not-a-digest!", 1)
        with pytest.raises(ValueError, match="hex"):
            store.get("")

    def test_corrupt_entry_is_a_miss(self, store):
        store.put(KEY_A, {"x": 1})
        path = store.directory / KEY_A[:2] / f"{KEY_A}.pkl"
        path.write_bytes(b"\x80\x05 truncated garbage")
        assert store.get(KEY_A) is None

    def test_overwrite_wins(self, store):
        store.put(KEY_A, "old")
        store.put(KEY_A, "new")
        assert store.get(KEY_A) == "new"

    def test_contains_without_read(self, store):
        assert not store.contains(KEY_A)
        store.put(KEY_A, 1)
        assert store.contains(KEY_A)

    def test_entry_count_size_and_clear(self, store):
        assert store.entry_count() == 0 and store.size_bytes() == 0
        store.put(KEY_A, list(range(100)))
        store.put(KEY_B, "tiny")
        assert store.entry_count() == 2
        assert store.size_bytes() >= len(pickle.dumps("tiny"))
        assert store.clear() == 2
        assert store.entry_count() == 0

    def test_pickles_cheaply(self, store):
        clone = pickle.loads(pickle.dumps(store))
        store.put(KEY_A, "shared")
        assert clone.get(KEY_A) == "shared"


class TestCounters:
    def test_hit_miss_write_counters(self, store):
        registry = MetricsRegistry()
        with use_metrics(registry):
            store.get(KEY_A)
            store.put(KEY_A, b"payload")
            store.get(KEY_A)
        snap = registry.snapshot()["counters"]
        assert snap["cache.misses"] == 1
        assert snap["cache.hits"] == 1
        assert snap["cache.writes"] == 1
        assert snap["cache.bytes_written"] > 0
        assert snap["cache.bytes_read"] > 0


class TestContext:
    def test_default_is_none(self):
        assert current_cache() is None

    def test_scoped_install_and_restore(self, store):
        with use_cache(store) as active:
            assert active is store
            assert current_cache() is store
        assert current_cache() is None

    def test_explicit_none_disables(self, store):
        with use_cache(store):
            with use_cache(None):
                assert current_cache() is None
            assert current_cache() is store

    def test_restored_after_exception(self, store):
        with pytest.raises(RuntimeError):
            with use_cache(store):
                raise RuntimeError("boom")
        assert current_cache() is None
