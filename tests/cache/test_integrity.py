"""Integrity behaviour of the store: quarantine, counters, maintenance."""

import os
import pickle

import pytest

from repro.cache import CacheStore
from repro.obs import MetricsRegistry, Tracer, use_metrics, use_tracer

KEY_A = "ab" + "0" * 62
KEY_B = "cd" + "1" * 62
KEY_C = "ef" + "2" * 62


@pytest.fixture
def store(tmp_path):
    return CacheStore(tmp_path / "cache")


def _corrupt(store, key):
    path = store._path_for(key)
    blob = bytearray(path.read_bytes())
    blob[len(blob) // 2] ^= 0xFF
    path.write_bytes(bytes(blob))
    return path


class TestCorruptReads:
    def test_flipped_byte_is_detected_and_quarantined(self, store):
        store.put(KEY_A, {"value": list(range(50))})
        path = _corrupt(store, KEY_A)
        registry = MetricsRegistry()
        tracer = Tracer()
        with use_metrics(registry), use_tracer(tracer):
            assert store.get(KEY_A) is None
        assert not path.exists()
        quarantined = store.directory / "quarantine" / path.name
        assert quarantined.exists()
        counters = registry.snapshot()["counters"]
        assert counters["cache.corrupt"] == 1
        assert "cache.misses" not in counters
        assert "cache.quarantined" in {s.name for s in tracer.spans}

    def test_recompute_after_quarantine(self, store):
        store.put(KEY_A, "original")
        _corrupt(store, KEY_A)
        assert store.get(KEY_A) is None  # quarantined
        store.put(KEY_A, "recomputed")  # caller recomputes
        assert store.get(KEY_A) == "recomputed"

    def test_miss_and_corrupt_counters_are_distinct(self, store):
        store.put(KEY_A, 1)
        _corrupt(store, KEY_A)
        registry = MetricsRegistry()
        with use_metrics(registry):
            store.get(KEY_B)  # absent: a miss
            store.get(KEY_A)  # damaged: corrupt, not a miss
        counters = registry.snapshot()["counters"]
        assert counters["cache.misses"] == 1
        assert counters["cache.corrupt"] == 1

    def test_memory_error_propagates(self, store, monkeypatch):
        store.put(KEY_A, 1)

        def explode(blob):
            raise MemoryError("allocation failed")

        monkeypatch.setattr("repro.cache.store.load_artifact", explode)
        with pytest.raises(MemoryError):
            store.get(KEY_A)
        # and the entry was NOT quarantined: OOM says nothing about it
        assert store.contains(KEY_A)

    def test_legacy_bare_pickle_still_loads(self, store):
        path = store._path_for(KEY_A)
        path.parent.mkdir(parents=True)
        path.write_bytes(pickle.dumps({"legacy": True}))
        assert store.get(KEY_A) == {"legacy": True}

    def test_quarantine_is_never_counted_as_an_entry(self, store):
        store.put(KEY_A, 1)
        store.put(KEY_B, 2)
        _corrupt(store, KEY_A)
        store.get(KEY_A)  # quarantines
        assert store.entry_count() == 1
        assert store.stats()["quarantined"] == 1


class TestVerify:
    def test_reports_and_quarantines_corrupt_entries(self, store):
        store.put(KEY_A, "good")
        store.put(KEY_B, "bad")
        store.put(KEY_C, "also good")
        _corrupt(store, KEY_B)
        registry = MetricsRegistry()
        with use_metrics(registry):
            report = store.verify()
        assert report["checked"] == 3
        assert report["ok"] == 2
        assert report["corrupt"] == [KEY_B]
        assert report["quarantined"] == 1
        assert registry.snapshot()["counters"]["cache.corrupt"] == 1
        assert store.get(KEY_A) == "good"  # untouched

    def test_no_repair_leaves_files_in_place(self, store):
        store.put(KEY_A, "x")
        path = _corrupt(store, KEY_A)
        report = store.verify(repair=False)
        assert report["corrupt"] == [KEY_A]
        assert report["quarantined"] == 0
        assert path.exists()

    def test_counts_legacy_entries(self, store):
        path = store._path_for(KEY_A)
        path.parent.mkdir(parents=True)
        path.write_bytes(pickle.dumps("legacy"))
        store.put(KEY_B, "framed")
        report = store.verify()
        assert report["legacy"] == 1
        assert report["ok"] == 2

    def test_clean_store_verifies_clean(self, store):
        store.put(KEY_A, 1)
        report = store.verify()
        assert report["corrupt"] == []
        assert report["ok"] == 1


class TestGc:
    def test_age_pruning_uses_injected_clock(self, store):
        store.put(KEY_A, "old")
        store.put(KEY_B, "new")
        old_path = store._path_for(KEY_A)
        os.utime(old_path, (1_000, 1_000))  # far in the past
        now = os.stat(store._path_for(KEY_B)).st_mtime
        removed = store.gc(max_age_s=3600, now=now)
        assert removed["expired"] == 1
        assert store.get(KEY_B) == "new"
        assert not store.contains(KEY_A)

    def test_size_eviction_drops_oldest_first(self, store):
        store.put(KEY_A, "a" * 100)
        store.put(KEY_B, "b" * 100)
        store.put(KEY_C, "c" * 100)
        os.utime(store._path_for(KEY_A), (1_000, 1_000))  # oldest
        entry_size = store.size_bytes() // 3
        removed = store.gc(max_bytes=entry_size * 2)
        assert removed["evicted"] == 1
        assert not store.contains(KEY_A)
        assert store.contains(KEY_B) and store.contains(KEY_C)

    def test_prunes_stale_tmp_and_quarantine(self, store):
        store.put(KEY_A, 1)
        shard = store._path_for(KEY_A).parent
        stale_tmp = shard / f"{KEY_A}.pkl.tmpXYZ"
        stale_tmp.write_bytes(b"torn write")
        os.utime(stale_tmp, (1_000, 1_000))
        _corrupt(store, KEY_A)
        store.get(KEY_A)  # → quarantine
        quarantined = store.directory / "quarantine"
        for path in quarantined.iterdir():
            os.utime(path, (1_000, 1_000))
        removed = store.gc(max_age_s=3600)
        assert removed["tmp"] == 1
        assert removed["quarantined"] == 1
        assert not stale_tmp.exists()

    def test_fresh_tmp_files_are_left_alone(self, store):
        store.put(KEY_A, 1)
        fresh_tmp = store._path_for(KEY_A).parent / "w.pkl.tmpABC"
        fresh_tmp.write_bytes(b"in-flight write")
        removed = store.gc(max_age_s=10**9)
        assert removed["tmp"] == 0
        assert fresh_tmp.exists()

    def test_noop_gc_reports_zeroes(self, store):
        store.put(KEY_A, 1)
        removed = store.gc(max_age_s=10**9, max_bytes=10**9)
        assert removed == {"expired": 0, "evicted": 0, "tmp": 0,
                           "quarantined": 0, "bytes_freed": 0}


class TestClear:
    def test_accurate_count_and_empty_tree(self, store):
        store.put(KEY_A, 1)
        store.put(KEY_B, 2)
        store.put(KEY_C, 3)
        _corrupt(store, KEY_C)
        store.get(KEY_C)  # one entry into quarantine
        stray = store._path_for(KEY_A).parent / "x.pkl.tmp123"
        stray.write_bytes(b"stray")
        assert store.clear() == 2  # entries only; quarantine not counted
        assert store.entry_count() == 0
        assert list(store.directory.iterdir()) == []  # shards pruned too

    def test_clear_empty_store_is_zero(self, store):
        assert store.clear() == 0

    def test_clear_then_reuse(self, store):
        store.put(KEY_A, "before")
        store.clear()
        store.put(KEY_A, "after")
        assert store.get(KEY_A) == "after"
