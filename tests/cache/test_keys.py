"""Key construction: every determining input must move the address."""

from datetime import date, timedelta

import numpy as np
import pytest

from repro.cache import (
    array_digest,
    dataset_key,
    fingerprint_parts,
    frame_digest,
    model_fit_key,
    scenarios_key,
    task_key,
)
from repro.frame import DateIndex, Frame
from repro.ml import GradientBoostingRegressor, RandomForestRegressor
from repro.resilience import FaultPlan, random_fault_plan
from repro.synth import SimulationConfig

HEX = set("0123456789abcdef")


def _frame(data: dict, start: str) -> Frame:
    n = len(next(iter(data.values())))
    index = DateIndex(
        date.fromisoformat(start) + timedelta(days=i) for i in range(n)
    )
    return Frame(index, data)


def _is_key(key):
    return isinstance(key, str) and len(key) == 64 and set(key) <= HEX


class TestFingerprintParts:
    def test_deterministic(self):
        assert fingerprint_parts("a", 1) == fingerprint_parts("a", 1)

    def test_order_sensitive(self):
        assert fingerprint_parts("a", "b") != fingerprint_parts("b", "a")

    def test_separator_prevents_merging(self):
        assert fingerprint_parts("ab", "c") != fingerprint_parts("a", "bc")


class TestArrayAndFrameDigests:
    def test_value_sensitivity(self):
        a = np.arange(6, dtype=np.float64)
        b = a.copy()
        b[3] += 1e-12
        assert array_digest(a) != array_digest(b)

    def test_dtype_and_shape_sensitivity(self):
        a = np.zeros(4, dtype=np.float64)
        assert array_digest(a) != array_digest(a.astype(np.float32))
        assert array_digest(a) != array_digest(a.reshape(2, 2))

    def test_non_contiguous_equals_contiguous(self):
        base = np.arange(20, dtype=np.float64).reshape(4, 5)
        view = base[:, ::2]
        assert array_digest(view) == array_digest(np.ascontiguousarray(view))

    def test_frame_digest_stable_including_nans(self):
        data = {"a": [1.0, float("nan"), 3.0], "b": [4.0, 5.0, 6.0]}
        f1 = _frame(data, "2020-01-01")
        f2 = _frame(data, "2020-01-01")
        assert frame_digest(f1) == frame_digest(f2)

    def test_frame_digest_sees_columns_and_index(self):
        f1 = _frame({"a": [1.0, 2.0]}, "2020-01-01")
        renamed = _frame({"z": [1.0, 2.0]}, "2020-01-01")
        shifted = _frame({"a": [1.0, 2.0]}, "2020-02-01")
        assert frame_digest(f1) != frame_digest(renamed)
        assert frame_digest(f1) != frame_digest(shifted)


class TestPipelineKeys:
    def test_dataset_key_moves_with_every_input(self):
        sim = SimulationConfig(seed=1)
        plan = random_fault_plan(7, ["onchain_btc"])
        base = dataset_key(sim)
        assert _is_key(base)
        assert dataset_key(SimulationConfig(seed=2)) != base
        assert dataset_key(sim, fault_plan=plan) != base
        assert dataset_key(sim, degradation="fill") != base

    def test_chaos_never_aliases_clean(self):
        # The structural-invalidation guarantee: a faulted run and a
        # clean run of the same seed live at different addresses.
        sim = SimulationConfig(seed=1)
        plan = FaultPlan(seed=0, events=())
        assert dataset_key(sim, fault_plan=plan, degradation="fill") \
            != dataset_key(sim)

    def test_scenarios_and_task_keys(self):
        skey = scenarios_key("d" * 64, ("2017",), (7, 90))
        assert _is_key(skey)
        assert scenarios_key("d" * 64, ("2017",), (7,)) != skey
        tkey = task_key("f" * 64, "d" * 64, "2017_7")
        assert _is_key(tkey)
        assert task_key("f" * 64, "d" * 64, "2017_90") != tkey
        assert task_key("e" * 64, "d" * 64, "2017_7") != tkey


class TestModelFitKey:
    @pytest.fixture(scope="class")
    def data(self):
        rng = np.random.default_rng(0)
        return rng.normal(size=(30, 3)), rng.normal(size=30)

    def test_param_and_data_sensitivity(self, data):
        X, y = data
        base = model_fit_key(RandomForestRegressor(n_estimators=5), X, y)
        assert _is_key(base)
        assert model_fit_key(
            RandomForestRegressor(n_estimators=6), X, y) != base
        assert model_fit_key(
            RandomForestRegressor(n_estimators=5), X + 1.0, y) != base
        assert model_fit_key(
            GradientBoostingRegressor(n_estimators=5), X, y) != base

    def test_n_jobs_excluded(self, data):
        X, y = data
        a = model_fit_key(RandomForestRegressor(n_jobs=1), X, y)
        b = model_fit_key(RandomForestRegressor(n_jobs=4), X, y)
        assert a == b

    def test_splitter_included(self, data):
        X, y = data
        exact = model_fit_key(RandomForestRegressor(splitter="exact"), X, y)
        hist = model_fit_key(RandomForestRegressor(splitter="hist"), X, y)
        assert exact != hist

    def test_tag_namespaces(self, data):
        X, y = data
        model = RandomForestRegressor()
        assert model_fit_key(model, X, y, tag="fra.rf") \
            != model_fit_key(model, X, y, tag="horizons.rf")
