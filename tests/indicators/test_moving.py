"""Unit tests for repro.indicators.moving."""

import numpy as np
import pytest

from repro.indicators import ema, sma, wma

NAN = np.nan


class TestSMA:
    def test_basic(self):
        out = sma(np.array([1.0, 2, 3, 4]), 2)
        assert np.isnan(out[0])
        assert out[1:].tolist() == [1.5, 2.5, 3.5]

    def test_window_one_identity(self):
        src = np.array([3.0, 1.0, 4.0])
        assert sma(src, 1).tolist() == src.tolist()


class TestEMA:
    def test_seeds_at_first_value(self):
        out = ema(np.array([10.0, 10.0, 10.0]), 5)
        assert out.tolist() == [10.0, 10.0, 10.0]

    def test_alpha_weighting(self):
        # span=1 -> alpha=1 -> EMA equals the series
        src = np.array([1.0, 5.0, 2.0])
        assert ema(src, 1).tolist() == src.tolist()

    def test_known_recursion(self):
        src = np.array([2.0, 4.0])
        out = ema(src, 3)  # alpha = 0.5
        assert out[1] == pytest.approx(0.5 * 4.0 + 0.5 * 2.0)

    def test_leading_nan_preserved(self):
        out = ema(np.array([NAN, NAN, 1.0, 2.0]), 3)
        assert np.isnan(out[:2]).all()
        assert out[2] == 1.0

    def test_interior_nan_coasts(self):
        out = ema(np.array([1.0, NAN, 1.0]), 3)
        assert out[1] == 1.0  # holds previous state through the gap

    def test_converges_to_constant(self):
        src = np.concatenate(([0.0], np.full(300, 5.0)))
        out = ema(src, 10)
        assert out[-1] == pytest.approx(5.0, abs=1e-8)

    def test_smoothing_lags_raw(self):
        """Longer spans react more slowly to a step change."""
        src = np.concatenate((np.zeros(10), np.ones(10)))
        fast = ema(src, 2)
        slow = ema(src, 20)
        assert fast[12] > slow[12]

    def test_bad_span(self):
        with pytest.raises(ValueError):
            ema(np.array([1.0]), 0)


class TestWMA:
    def test_weights_recent_more(self):
        out = wma(np.array([0.0, 0.0, 3.0]), 3)
        # weights 1/6, 2/6, 3/6 -> 3*0.5 = 1.5
        assert out[2] == pytest.approx(1.5)

    def test_constant_series(self):
        out = wma(np.full(5, 7.0), 3)
        assert np.allclose(out[2:], 7.0)

    def test_warmup_nan(self):
        out = wma(np.arange(5.0), 3)
        assert np.isnan(out[:2]).all()

    def test_short_series_all_nan(self):
        assert np.isnan(wma(np.array([1.0, 2.0]), 5)).all()

    def test_bad_window(self):
        with pytest.raises(ValueError):
            wma(np.array([1.0]), 0)

    def test_wma_between_sma_and_last_value_for_trend(self):
        src = np.arange(10.0)
        s = sma(src, 4)[-1]
        w = wma(src, 4)[-1]
        assert s < w < src[-1]
