"""Unit tests for the paper's technical-indicator block."""

import numpy as np
import pytest

from repro.frame import Frame, date_range
from repro.indicators import MA_SPANS, technical_indicator_frame


@pytest.fixture(scope="module")
def btc_frame():
    rng = np.random.default_rng(0)
    n = 400
    close = 1000 * np.exp(np.cumsum(rng.normal(0.001, 0.03, n)))
    open_ = np.concatenate(([close[0]], close[:-1]))
    spread = np.abs(rng.normal(0, 0.01, n))
    return Frame(
        date_range("2017-01-01", periods=n),
        {
            "open": open_,
            "high": np.maximum(open_, close) * (1 + spread),
            "low": np.minimum(open_, close) * (1 - spread),
            "close": close,
            "volume": 1e9 * np.exp(rng.normal(0, 0.2, n)),
            "market_cap": close * 17e6,
        },
    )


class TestSuite:
    def test_paper_feature_names_present(self, btc_frame):
        frame = technical_indicator_frame(btc_frame)
        for name in (
            "EMA100_market-cap", "EMA200_close-price", "EMA14_close-price",
            "EMA10_market-cap", "SMA_20_close-price", "SMA_10_market-cap",
            "EMA200_volume", "EMA100_volume", "EMA5_market-cap",
            "SMA_5_close-price", "EMA30_market-cap",
        ):
            assert name in frame, name

    def test_all_ma_spans_covered(self, btc_frame):
        frame = technical_indicator_frame(btc_frame)
        for span in MA_SPANS:
            for var in ("close-price", "market-cap", "volume"):
                assert f"EMA{span}_{var}" in frame

    def test_momentum_and_volatility_included(self, btc_frame):
        frame = technical_indicator_frame(btc_frame)
        for name in ("RSI14_close-price", "MACD_close-price",
                     "BBup20_close-price", "BBlow20_close-price",
                     "ROC10_close-price", "StochK14_close-price",
                     "ATR14_close-price", "Volatility30_close-price"):
            assert name in frame, name

    def test_block_is_large(self, btc_frame):
        frame = technical_indicator_frame(btc_frame)
        assert frame.n_cols >= 50

    def test_index_preserved(self, btc_frame):
        frame = technical_indicator_frame(btc_frame)
        assert frame.index == btc_frame.index

    def test_ema_columns_match_direct_computation(self, btc_frame):
        from repro.indicators import ema

        frame = technical_indicator_frame(btc_frame)
        direct = ema(btc_frame["close"], 14)
        assert np.allclose(
            frame["EMA14_close-price"], direct, equal_nan=True
        )

    def test_sma_columns_match_direct_computation(self, btc_frame):
        from repro.indicators import sma

        frame = technical_indicator_frame(btc_frame)
        direct = sma(btc_frame["market_cap"], 20)
        assert np.allclose(
            frame["SMA_20_market-cap"], direct, equal_nan=True
        )

    def test_missing_column_rejected(self, btc_frame):
        broken = btc_frame.drop(["volume"])
        with pytest.raises(ValueError):
            technical_indicator_frame(broken)

    def test_warmup_nans_bounded(self, btc_frame):
        """Only rolling indicators have warm-ups; all shorter than 200."""
        frame = technical_indicator_frame(btc_frame)
        from repro.frame import leading_nan_count

        for name in frame.columns:
            assert leading_nan_count(frame[name]) <= 200, name
