"""Unit tests for repro.indicators.momentum and .volatility."""

import numpy as np
import pytest

from repro.indicators import (
    atr,
    bollinger_bands,
    macd,
    roc,
    rolling_volatility,
    rsi,
    stochastic_d,
    stochastic_k,
)


class TestRSI:
    def test_all_gains_is_100(self):
        out = rsi(np.arange(1.0, 30.0), 14)
        assert out[-1] == pytest.approx(100.0)

    def test_all_losses_is_0(self):
        out = rsi(np.arange(30.0, 1.0, -1.0), 14)
        assert out[-1] == pytest.approx(0.0)

    def test_flat_is_neutral(self):
        out = rsi(np.full(30, 5.0), 14)
        assert out[-1] == pytest.approx(50.0)

    def test_warmup_nan(self):
        out = rsi(np.arange(1.0, 30.0), 14)
        assert np.isnan(out[:14]).all()
        assert not np.isnan(out[14:]).any()

    def test_range_bounded(self):
        rng = np.random.default_rng(0)
        prices = 100 * np.exp(np.cumsum(rng.normal(0, 0.02, 300)))
        out = rsi(prices, 14)
        valid = out[~np.isnan(out)]
        assert (valid >= 0).all() and (valid <= 100).all()

    def test_short_series_all_nan(self):
        assert np.isnan(rsi(np.arange(5.0), 14)).all()

    def test_bad_window(self):
        with pytest.raises(ValueError):
            rsi(np.arange(10.0), 0)


class TestMACD:
    def test_shapes(self):
        prices = np.arange(1.0, 101.0)
        line, signal, hist = macd(prices)
        assert line.shape == signal.shape == hist.shape == prices.shape

    def test_histogram_identity(self):
        rng = np.random.default_rng(1)
        prices = 100 * np.exp(np.cumsum(rng.normal(0, 0.02, 200)))
        line, signal, hist = macd(prices)
        assert np.allclose(hist, line - signal, equal_nan=True)

    def test_uptrend_positive_macd(self):
        prices = np.exp(np.linspace(0, 2, 200))
        line, _, _ = macd(prices)
        assert line[-1] > 0

    def test_constant_series_zero(self):
        line, signal, hist = macd(np.full(100, 50.0))
        assert np.allclose(line, 0.0)
        assert np.allclose(hist, 0.0)

    def test_fast_must_be_faster(self):
        with pytest.raises(ValueError):
            macd(np.arange(50.0), fast=26, slow=12)


class TestROC:
    def test_known_value(self):
        out = roc(np.array([100.0, 0, 0, 0, 0, 110.0]), 5)
        assert out[5] == pytest.approx(10.0)

    def test_warmup(self):
        out = roc(np.arange(1.0, 20.0), 10)
        assert np.isnan(out[:10]).all()

    def test_zero_base_nan(self):
        out = roc(np.array([0.0, 1.0]), 1)
        assert np.isnan(out[1])

    def test_bad_window(self):
        with pytest.raises(ValueError):
            roc(np.arange(5.0), 0)


class TestStochastic:
    def test_close_at_high_is_100(self):
        n = 20
        close = np.linspace(1, 20, n)
        high = close
        low = close - 1
        out = stochastic_k(close, high, low, 5)
        assert out[-1] == pytest.approx(100.0, abs=1e-9)

    def test_close_at_low_is_0(self):
        n = 20
        close = np.linspace(20, 1, n)
        high = close + 1
        low = close
        out = stochastic_k(close, high, low, 5)
        assert out[-1] == pytest.approx(0.0, abs=1e-9)

    def test_flat_range_neutral(self):
        close = np.full(20, 10.0)
        out = stochastic_k(close, close, close, 5)
        assert out[-1] == pytest.approx(50.0)

    def test_d_is_smoothed_k(self):
        rng = np.random.default_rng(2)
        close = 100 + np.cumsum(rng.normal(0, 1, 100))
        high = close + np.abs(rng.normal(0, 0.5, 100))
        low = close - np.abs(rng.normal(0, 0.5, 100))
        k = stochastic_k(close, high, low, 14)
        d = stochastic_d(close, high, low, 14, smooth=3)
        # %D at t = mean of %K over the last 3 points
        assert d[20] == pytest.approx(np.mean(k[18:21]))


class TestBollinger:
    def test_band_symmetry(self):
        rng = np.random.default_rng(3)
        prices = 100 + rng.normal(0, 2, 100)
        mid, up, low = bollinger_bands(prices, 20, 2.0)
        valid = ~np.isnan(mid)
        assert np.allclose((up + low)[valid] / 2, mid[valid])
        assert (up[valid] >= low[valid]).all()

    def test_constant_series_zero_width(self):
        mid, up, low = bollinger_bands(np.full(50, 10.0), 20)
        valid = ~np.isnan(mid)
        assert np.allclose(up[valid], low[valid])

    def test_nstd_scales_width(self):
        rng = np.random.default_rng(4)
        prices = 100 + rng.normal(0, 2, 100)
        _, up2, low2 = bollinger_bands(prices, 20, 2.0)
        _, up1, low1 = bollinger_bands(prices, 20, 1.0)
        valid = ~np.isnan(up2)
        assert np.allclose(
            (up2 - low2)[valid], 2 * (up1 - low1)[valid]
        )

    def test_bad_nstd(self):
        with pytest.raises(ValueError):
            bollinger_bands(np.arange(30.0), 20, 0.0)


class TestATR:
    def test_simple_range(self):
        n = 30
        close = np.full(n, 10.0)
        high = close + 1.0
        low = close - 1.0
        out = atr(high, low, close, 14)
        assert out[-1] == pytest.approx(2.0)

    def test_gap_day_uses_prev_close(self):
        close = np.array([10.0, 20.0, 20.0])
        high = np.array([10.5, 20.5, 20.5])
        low = np.array([9.5, 19.5, 19.5])
        out = atr(high, low, close, 2)
        # day 1 true range = max(1, |20.5-10|, |19.5-10|) = 10.5
        assert out[1] == pytest.approx((1.0 + 10.5) / 2)

    def test_nonnegative(self):
        rng = np.random.default_rng(5)
        close = 100 + np.cumsum(rng.normal(0, 1, 100))
        high = close + np.abs(rng.normal(0, 1, 100))
        low = close - np.abs(rng.normal(0, 1, 100))
        out = atr(high, low, close)
        assert (out[~np.isnan(out)] >= 0).all()


class TestRollingVolatility:
    def test_constant_prices_zero_vol(self):
        out = rolling_volatility(np.full(100, 50.0), 30)
        valid = out[~np.isnan(out)]
        assert np.allclose(valid, 0.0)

    def test_annualisation_uses_365(self):
        rng = np.random.default_rng(6)
        prices = 100 * np.exp(np.cumsum(rng.normal(0, 0.02, 400)))
        ann = rolling_volatility(prices, 30, annualise=True)
        raw = rolling_volatility(prices, 30, annualise=False)
        valid = ~np.isnan(ann)
        assert np.allclose(ann[valid], raw[valid] * np.sqrt(365))

    def test_higher_noise_higher_vol(self):
        rng = np.random.default_rng(7)
        calm = 100 * np.exp(np.cumsum(rng.normal(0, 0.005, 200)))
        wild = 100 * np.exp(np.cumsum(rng.normal(0, 0.05, 200)))
        v_calm = rolling_volatility(calm, 30)
        v_wild = rolling_volatility(wild, 30)
        assert np.nanmean(v_wild) > np.nanmean(v_calm)
