"""Tests for the ``repro cache`` maintenance CLI and run knobs."""

import os

import pytest

from repro.cache import CacheStore
from repro.cli import build_parser, main

KEY_A = "ab" + "0" * 62
KEY_B = "cd" + "1" * 62


@pytest.fixture
def store(tmp_path):
    store = CacheStore(tmp_path / "cache")
    store.put(KEY_A, {"value": list(range(50))})
    store.put(KEY_B, "small")
    return store


def _corrupt(store, key):
    path = store._path_for(key)
    blob = bytearray(path.read_bytes())
    blob[len(blob) // 2] ^= 0xFF
    path.write_bytes(bytes(blob))


class TestCacheStats:
    def test_prints_inventory(self, store, capsys):
        assert main(["cache", "stats", "--dir",
                     str(store.directory)]) == 0
        out = capsys.readouterr().out
        assert "entries      2" in out
        assert "quarantined  0" in out

    def test_no_directory_is_an_error(self, capsys, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        assert main(["cache", "stats"]) == 1
        assert "REPRO_CACHE_DIR" in capsys.readouterr().out

    def test_env_dir_fallback(self, store, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(store.directory))
        assert main(["cache", "stats"]) == 0
        assert "entries      2" in capsys.readouterr().out


class TestCacheVerify:
    def test_clean_store_exits_zero(self, store, capsys):
        assert main(["cache", "verify", "--dir",
                     str(store.directory)]) == 0
        assert "0 corrupt" in capsys.readouterr().out

    def test_corruption_reported_and_exits_one(self, store, capsys):
        _corrupt(store, KEY_A)
        assert main(["cache", "verify", "--dir",
                     str(store.directory)]) == 1
        out = capsys.readouterr().out
        assert "1 corrupt" in out
        assert KEY_A in out
        assert "quarantine" in out
        assert (store.directory / "quarantine"
                / f"{KEY_A}.pkl").exists()

    def test_no_repair_leaves_the_file(self, store, capsys):
        _corrupt(store, KEY_A)
        assert main(["cache", "verify", "--no-repair", "--dir",
                     str(store.directory)]) == 1
        assert store.contains(KEY_A)


class TestCacheGc:
    def test_requires_a_bound(self, store, capsys):
        assert main(["cache", "gc", "--dir",
                     str(store.directory)]) == 1
        assert "--max-size" in capsys.readouterr().out

    def test_max_age_prunes_old_entries(self, store, capsys):
        os.utime(store._path_for(KEY_A), (1_000, 1_000))
        assert main(["cache", "gc", "--dir", str(store.directory),
                     "--max-age", "30d"]) == 0
        assert "1 expired" in capsys.readouterr().out
        assert not store.contains(KEY_A)
        assert store.contains(KEY_B)

    def test_max_size_evicts_oldest(self, store, capsys):
        os.utime(store._path_for(KEY_A), (1_000, 1_000))
        assert main(["cache", "gc", "--dir", str(store.directory),
                     "--max-size", "100"]) == 0
        assert "1 evicted" in capsys.readouterr().out
        assert not store.contains(KEY_A)

    def test_size_suffix_parsing(self):
        parser = build_parser()
        args = parser.parse_args(["cache", "gc", "--dir", "x",
                                  "--max-size", "2G",
                                  "--max-age", "12h"])
        assert args.max_size == 2 * 1024 ** 3
        assert args.max_age == 12 * 3600.0

    def test_garbage_size_rejected(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args(["cache", "gc", "--dir", "x",
                               "--max-size", "huge"])


class TestCacheClear:
    def test_clears_everything(self, store, capsys):
        assert main(["cache", "clear", "--dir",
                     str(store.directory)]) == 0
        assert "cleared 2 entries" in capsys.readouterr().out
        assert store.entry_count() == 0
        assert list(store.directory.iterdir()) == []


class TestRunSupervisionKnobs:
    def test_run_parser_accepts_the_knobs(self):
        parser = build_parser()
        args = parser.parse_args(["run", "--task-timeout", "90",
                                  "--task-retries", "4"])
        assert args.task_timeout == 90.0
        assert args.task_retries == 4

    def test_defaults_are_unset(self):
        args = build_parser().parse_args(["run"])
        assert args.task_timeout is None
        assert args.task_retries is None
