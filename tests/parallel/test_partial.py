"""Partial-results mode (``map(..., return_exceptions=True)``)."""

import pytest

from repro.parallel import ItemFailure, ParallelMap, parallel_map


# Module-level work units: the process backend pickles by reference.
def _boom_on_multiples_of_three(x):
    if x % 3 == 0:
        raise ValueError(f"boom at {x}")
    return x * 2


def _always_ok(x):
    return x + 1


class UnpicklableError(Exception):
    def __init__(self, message):
        super().__init__(message)
        self.payload = lambda: None  # lambdas never pickle


def _raise_unpicklable(x):
    raise UnpicklableError(f"weird failure at {x}")


def _raise_keyboard_interrupt(x):
    raise KeyboardInterrupt


@pytest.mark.parametrize("backend", ["serial", "thread", "process"])
class TestPartialResults:
    def test_failures_at_their_positions(self, backend):
        items = list(range(1, 8))  # 3 and 6 fail
        out = ParallelMap(3, backend=backend).map(
            _boom_on_multiples_of_three, items, return_exceptions=True
        )
        assert len(out) == len(items)
        for index, (item, result) in enumerate(zip(items, out)):
            if item % 3 == 0:
                assert isinstance(result, ItemFailure)
                assert result.index == index
                assert result.error_type == "ValueError"
                assert f"boom at {item}" in result.message
                assert "boom at" in result.traceback
            else:
                assert result == item * 2

    def test_all_ok_matches_default_mode(self, backend):
        items = list(range(9))
        with_flag = ParallelMap(2, backend=backend).map(
            _always_ok, items, return_exceptions=True
        )
        without = ParallelMap(2, backend=backend).map(_always_ok, items)
        assert with_flag == without

    def test_all_failures_still_ordered(self, backend):
        out = ParallelMap(2, backend=backend).map(
            _boom_on_multiples_of_three, [0, 3, 6, 9],
            return_exceptions=True,
        )
        assert [f.index for f in out] == [0, 1, 2, 3]
        assert all(isinstance(f, ItemFailure) for f in out)


class TestDefaultModeUnchanged:
    @pytest.mark.parametrize("backend", ["serial", "thread", "process"])
    def test_raises_on_first_error(self, backend):
        with pytest.raises(ValueError, match="boom at"):
            ParallelMap(2, backend=backend).map(
                _boom_on_multiples_of_three, [1, 2, 3, 4]
            )


class TestExceptionTransport:
    def test_exception_object_kept_in_process_when_picklable(self):
        out = ParallelMap(1).map(
            _boom_on_multiples_of_three, [3], return_exceptions=True
        )
        assert isinstance(out[0].exception, ValueError)

    def test_unpicklable_exception_degrades_to_strings(self):
        out = ParallelMap(2, backend="process").map(
            _raise_unpicklable, [1, 2], return_exceptions=True
        )
        for failure in out:
            assert isinstance(failure, ItemFailure)
            assert failure.error_type == "UnpicklableError"
            assert "weird failure" in failure.message
            assert failure.exception is None

    def test_unpicklable_exception_kept_in_thread_backend(self):
        out = ParallelMap(2, backend="thread").map(
            _raise_unpicklable, [1, 2], return_exceptions=True
        )
        for failure in out:
            assert isinstance(failure.exception, UnpicklableError)

    def test_str_is_informative(self):
        failure = ItemFailure(index=4, error_type="ValueError",
                              message="nope", traceback="")
        assert "item 4" in str(failure)
        assert "ValueError" in str(failure)
        assert "nope" in str(failure)

    def test_pickle_roundtrip_keeps_picklable_exception(self):
        import pickle

        failure = ItemFailure(index=2, error_type="ValueError",
                              message="nope", traceback="tb",
                              exception=ValueError("nope"))
        clone = pickle.loads(pickle.dumps(failure))
        assert (clone.index, clone.error_type, clone.message,
                clone.traceback) == (2, "ValueError", "nope", "tb")
        assert isinstance(clone.exception, ValueError)

    def test_pickle_roundtrip_degrades_unpicklable_exception(self):
        # A failure captured in-process (thread/serial) may hold an
        # unpicklable exception; persisting it to a checkpoint or cache
        # entry must degrade the object to None, never fail the dump.
        import pickle

        failure = ItemFailure(index=0, error_type="UnpicklableError",
                              message="weird", traceback="tb",
                              exception=UnpicklableError("weird"))
        blob = pickle.dumps(failure)  # must not raise
        clone = pickle.loads(blob)
        assert clone.exception is None
        assert clone.message == "weird"  # string fields survive
        assert clone.traceback == "tb"
        # the in-memory original is untouched
        assert isinstance(failure.exception, UnpicklableError)


class TestBaseExceptionsStillPropagate:
    def test_keyboard_interrupt_not_captured_serial(self):
        with pytest.raises(KeyboardInterrupt):
            ParallelMap(1).map(_raise_keyboard_interrupt, [1],
                               return_exceptions=True)


class TestConvenienceWrapperUnchanged:
    def test_parallel_map_has_no_partial_mode(self):
        # the one-shot helper stays raise-only by design
        with pytest.raises(ValueError):
            parallel_map(_boom_on_multiples_of_three, [3], n_jobs=1)
