"""Shared-memory transport: publishing, by-reference pickling, lifecycle.

The headline contracts under test:

* published views are bit-exact, read-only, and pickle *by reference*
  (a few hundred bytes regardless of array size) while the segment is
  alive, degrading to a by-value copy afterwards;
* every segment is unlinked from ``/dev/shm`` on clean close, on pool
  rebuilds after worker crashes, and even when the owning process is
  SIGKILLed (the multiprocessing resource tracker owns that case);
* attaching an unlinked segment raises :class:`SharedSegmentGone` — a
  structured error, never a segfault;
* the artifact codec materialises shared references, so cache and
  checkpoint entries written by workers never name a segment.
"""

import os
import pickle
import signal
import subprocess
import sys
import time
from functools import partial

import numpy as np
import pytest

from repro.cache.codec import dump_artifact, load_artifact
from repro.parallel import (
    SharedArray,
    SharedDataset,
    SharedSegmentGone,
    share_payload,
    shm_enabled,
)
from repro.parallel.shm import attach

pytestmark = pytest.mark.skipif(
    not shm_enabled(), reason="shared memory unsupported or disabled"
)

SRC = os.path.join(os.path.dirname(__file__), "..", "..", "src")


def _segment_exists(name: str) -> bool:
    return os.path.exists(os.path.join("/dev/shm", name))


def _big(seed=0, shape=(256, 64)):
    return np.random.default_rng(seed).normal(size=shape)


class TestPublish:
    def test_view_is_bit_exact_and_read_only(self):
        arr = _big(1)
        with SharedDataset() as ds:
            view = ds.publish(arr)
            assert isinstance(view, SharedArray)
            assert np.array_equal(view, arr)
            assert view.dtype == arr.dtype
            assert not view.flags.writeable
            with pytest.raises((ValueError, RuntimeError)):
                view[0, 0] = 1.0

    def test_publish_same_object_is_deduplicated(self):
        arr = _big(2)
        with SharedDataset() as ds:
            first = ds.publish(arr)
            second = ds.publish(arr)
            assert first is second
            assert len(ds) == 1

    def test_share_below_threshold_returns_original(self):
        small = np.arange(16, dtype=np.float64)
        with SharedDataset() as ds:
            assert ds.share(small) is small
            assert len(ds) == 0

    def test_share_rejects_object_dtype(self):
        arr = np.empty(100_000, dtype=object)
        with SharedDataset() as ds:
            assert ds.share(arr) is arr

    def test_share_disabled_by_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SHM", "0")
        arr = _big(3)
        with SharedDataset() as ds:
            assert ds.share(arr) is arr

    def test_fortran_order_round_trips(self):
        arr = np.asfortranarray(_big(4))
        with SharedDataset() as ds:
            view = ds.publish(arr)
            assert view.flags.f_contiguous
            assert np.array_equal(view, arr)


class TestByReferencePickle:
    def test_pickle_is_small_and_loads_equal(self):
        arr = _big(5)  # 128 KiB of float64
        with SharedDataset() as ds:
            view = ds.publish(arr)
            blob = pickle.dumps(view, pickle.HIGHEST_PROTOCOL)
            assert len(blob) < 2048  # reference, not bytes
            loaded = pickle.loads(blob)
            assert np.array_equal(loaded, arr)
            assert not loaded.flags.writeable

    def test_slices_stay_by_reference(self):
        arr = _big(6)
        with SharedDataset() as ds:
            view = ds.publish(arr)
            for sliced in (view[10:50], view[:, 3], view.T,
                           view[::-1], view[::2, ::3]):
                blob = pickle.dumps(sliced, pickle.HIGHEST_PROTOCOL)
                assert len(blob) < 2048
                assert np.array_equal(pickle.loads(blob), sliced)

    def test_fancy_index_degrades_to_plain_array(self):
        arr = _big(7)
        with SharedDataset() as ds:
            view = ds.publish(arr)
            picked = view[np.array([3, 1, 2])]
            assert getattr(picked, "_shm", None) is None
            assert np.array_equal(
                pickle.loads(pickle.dumps(picked)), arr[[3, 1, 2]]
            )

    def test_pickle_after_close_degrades_to_value(self):
        arr = _big(8)
        ds = SharedDataset()
        view = ds.publish(arr)
        ds.close()
        # The segment is gone, but the owner's mapping is parked — the
        # view must still pickle (by value) and read back bit-exact.
        loaded = pickle.loads(pickle.dumps(view, pickle.HIGHEST_PROTOCOL))
        assert np.array_equal(loaded, arr)


class TestLifecycle:
    def test_clean_close_unlinks(self):
        ds = SharedDataset()
        view = ds.publish(_big(9))
        name = view._shm.name
        assert _segment_exists(name)
        ds.close()
        assert not _segment_exists(name)
        ds.close()  # idempotent

    def test_attach_after_unlink_raises_structured_error(self):
        ds = SharedDataset()
        view = ds.publish(_big(10))
        spec = view._shm.spec()
        ds.close()
        with pytest.raises(SharedSegmentGone) as excinfo:
            attach(spec)
        assert excinfo.value.name == spec[0]

    def test_unpickle_reference_after_close_raises_in_fresh_process(self):
        ds = SharedDataset()
        view = ds.publish(_big(11))
        blob = pickle.dumps(view, pickle.HIGHEST_PROTOCOL)
        ds.close()
        # A fresh interpreter has no parked mapping: the stale reference
        # must fail with SharedSegmentGone, never a segfault.
        script = (
            "import pickle, sys\n"
            "from repro.parallel import SharedSegmentGone\n"
            "try:\n"
            "    pickle.loads(sys.stdin.buffer.read())\n"
            "except SharedSegmentGone:\n"
            "    print('GONE')\n"
        )
        proc = subprocess.run(
            [sys.executable, "-c", script], input=blob,
            capture_output=True, env={**os.environ, "PYTHONPATH": SRC},
        )
        assert proc.returncode == 0, proc.stderr.decode()
        assert b"GONE" in proc.stdout

    def test_sigkill_of_owner_still_unlinks(self, tmp_path):
        """The resource tracker unlinks owned segments on owner death."""
        name_file = tmp_path / "segment-name"
        script = (
            "import numpy as np, os, signal\n"
            "from repro.parallel import SharedDataset\n"
            "ds = SharedDataset()\n"
            "view = ds.publish(np.ones((256, 64)))\n"
            f"open({str(name_file)!r}, 'w').write(view._shm.name)\n"
            "os.kill(os.getpid(), signal.SIGKILL)\n"
        )
        proc = subprocess.run(
            [sys.executable, "-c", script], capture_output=True,
            env={**os.environ, "PYTHONPATH": SRC},
        )
        assert proc.returncode == -signal.SIGKILL
        name = name_file.read_text().strip()
        deadline = time.monotonic() + 10.0
        while _segment_exists(name):
            if time.monotonic() > deadline:
                pytest.fail(f"segment {name} leaked after SIGKILL")
            time.sleep(0.1)

    def test_worker_crash_and_pool_rebuild_leak_nothing(self, tmp_path):
        from repro.parallel import ParallelMap, WorkerPool, use_pool

        marker = str(tmp_path / "crashed")
        with WorkerPool(n_jobs=2) as pool:
            shared = pool.dataset.publish(_big(12))
            name = shared._shm.name
            with use_pool(pool):
                first = ParallelMap(2).map(
                    partial(_crash_once_then_total, marker=marker,
                            shared=shared),
                    [0, 1, 2, 3],
                )
            assert _segment_exists(name)  # parent owns it across crashes
            expect = [float(shared.sum()) + i for i in range(4)]
            assert first == expect
        assert not _segment_exists(name)


def _crash_once_then_total(item, marker, shared):
    """First worker to arrive dies; retries compute from shared data."""
    from repro.parallel import in_worker

    if in_worker() and not os.path.exists(marker):
        open(marker, "w").write("x")
        os._exit(1)
    return float(shared.sum()) + item


class TestSharePayload:
    def test_partial_arguments_are_shared(self):
        arr = _big(13)
        with SharedDataset() as ds:
            fn = partial(np.sum, a=arr)
            shipped = share_payload(fn, ds.share)
            assert isinstance(shipped.keywords["a"], SharedArray)
            assert len(ds) == 1

    def test_shm_share_hook_is_called(self):
        class Carrier:
            def __init__(self, arr):
                self.arr = arr

            def __shm_share__(self, share):
                return Carrier(share(self.arr))

        arr = _big(14)
        with SharedDataset() as ds:
            shipped = share_payload(Carrier(arr), ds.share)
            assert isinstance(shipped.arr, SharedArray)

    def test_feature_bins_hook(self):
        from repro.ml.tree import bin_features

        X = _big(15, shape=(70_000, 2))
        bins = bin_features(X)
        with SharedDataset() as ds:
            shared = share_payload(bins, ds.share)
            assert isinstance(shared.codes, SharedArray)
            assert np.array_equal(shared.codes, bins.codes)
            assert shared.cuts == bins.cuts

    def test_compiled_ensemble_hook(self):
        from repro.ml.compiled import compile_ensemble
        from repro.ml.forest import RandomForestRegressor

        rng = np.random.default_rng(16)
        X = rng.normal(size=(200, 4))
        y = rng.normal(size=200)
        compiled = compile_ensemble(
            RandomForestRegressor(n_estimators=3, max_depth=3,
                                  random_state=0).fit(X, y)
        )
        with SharedDataset() as ds:
            shared = share_payload(compiled, ds.share)
            assert shared is not compiled
            assert np.array_equal(shared.predict(X), compiled.predict(X))


class TestCodecSanitisation:
    def test_shared_arrays_are_materialised(self):
        arr = _big(17)
        ds = SharedDataset()
        view = ds.publish(arr)
        blob = dump_artifact({"X": view, "slice": view[5:20]})
        ds.close()
        loaded = load_artifact(blob)
        assert type(loaded["X"]) is np.ndarray
        assert np.array_equal(loaded["X"], arr)
        assert np.array_equal(loaded["slice"], arr[5:20])

    def test_frames_with_shared_matrix_are_materialised(self):
        from repro.frame import Frame, date_range

        index = date_range("2020-01-01", periods=9000)
        frame = Frame(index, {
            "a": np.arange(9000, dtype=np.float64),
            "b": np.ones(9000),
        })
        ds = SharedDataset()
        frame.share_matrix(ds)
        blob = dump_artifact(frame)
        ds.close()
        loaded = load_artifact(blob)
        assert type(loaded["a"]) is np.ndarray
        assert np.array_equal(loaded["a"], np.arange(9000))
        assert loaded._matrix_src is None
