"""Tests for the :mod:`repro.parallel` execution facade."""

import os

import pytest

from repro.obs import (
    MetricsRegistry,
    Tracer,
    span,
    use_metrics,
    use_tracer,
)
from repro.parallel import (
    ParallelMap,
    in_worker,
    parallel_map,
    resolve_backend,
    resolve_n_jobs,
)
from repro.parallel.executor import ENV_BACKEND, ENV_JOBS
from repro.parallel.seeding import spawn_seeds


# ----------------------------------------------------------------------
# Module-level work units (process backend requires picklable functions).
# ----------------------------------------------------------------------
def _square(x):
    return x * x


def _boom(x):
    if x == 3:
        raise RuntimeError("item 3 exploded")
    return x


def _am_i_in_a_worker(_):
    return in_worker()


def _nested_map(_):
    # A worker that itself asks for parallelism must run inline.
    inner = ParallelMap(4, backend="thread").map(_square, [1, 2, 3])
    return (in_worker(), inner)


def _traced_unit(x):
    from repro.obs import current_metrics

    with span("worker.task", item=x):
        current_metrics().counter("worker.items").inc()
        current_metrics().histogram("worker.value").observe(float(x))
    return x * 10


def _slow_success_or_fast_boom(x):
    import time

    if x == 0:
        time.sleep(1.0)  # an early chunk that is merely slow
        return x
    raise RuntimeError(f"fast failure at {x}")


class TestResolveNJobs:
    def test_explicit_arg_wins_over_env(self, monkeypatch):
        monkeypatch.setenv(ENV_JOBS, "7")
        assert resolve_n_jobs(3) == 3

    def test_none_reads_env(self, monkeypatch):
        monkeypatch.setenv(ENV_JOBS, "5")
        assert resolve_n_jobs(None) == 5

    def test_none_without_env_is_cpu_count(self, monkeypatch):
        monkeypatch.delenv(ENV_JOBS, raising=False)
        assert resolve_n_jobs(None) == max(1, os.cpu_count() or 1)

    def test_blank_env_ignored(self, monkeypatch):
        monkeypatch.setenv(ENV_JOBS, "   ")
        assert resolve_n_jobs(None) == max(1, os.cpu_count() or 1)

    def test_negative_counts_back_from_cpus(self):
        cpus = os.cpu_count() or 1
        assert resolve_n_jobs(-1) == max(1, cpus)
        assert resolve_n_jobs(-cpus - 10) == 1

    def test_zero_rejected(self):
        with pytest.raises(ValueError):
            resolve_n_jobs(0)

    def test_bool_and_float_rejected(self):
        with pytest.raises(TypeError):
            resolve_n_jobs(True)
        with pytest.raises(TypeError):
            resolve_n_jobs(2.0)

    def test_garbage_env_raises(self, monkeypatch):
        monkeypatch.setenv(ENV_JOBS, "lots")
        with pytest.raises(ValueError):
            resolve_n_jobs(None)


class TestResolveBackend:
    def test_default_is_process(self, monkeypatch):
        monkeypatch.delenv(ENV_BACKEND, raising=False)
        assert resolve_backend(None) == "process"

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv(ENV_BACKEND, "thread")
        assert resolve_backend(None) == "thread"

    def test_unknown_rejected(self):
        with pytest.raises(ValueError):
            resolve_backend("greenlet")


class TestMapSemantics:
    @pytest.mark.parametrize("backend", ["serial", "thread", "process"])
    def test_ordered_results(self, backend):
        items = list(range(13))
        out = parallel_map(_square, items, n_jobs=3, backend=backend)
        assert out == [x * x for x in items]

    def test_empty_items(self):
        assert ParallelMap(4, backend="process").map(_square, []) == []

    def test_chunk_size_honoured(self):
        out = parallel_map(_square, range(10), n_jobs=2,
                           backend="thread", chunk_size=3)
        assert out == [x * x for x in range(10)]

    def test_bad_chunk_size_rejected(self):
        with pytest.raises(ValueError):
            ParallelMap(2, chunk_size=0)

    @pytest.mark.parametrize("backend", ["thread", "process"])
    def test_error_propagates_with_original_type(self, backend):
        with pytest.raises(RuntimeError, match="item 3 exploded"):
            parallel_map(_boom, range(6), n_jobs=2, backend=backend)

    def test_serial_path_never_builds_a_pool(self, monkeypatch):
        def forbidden(self, max_workers):
            raise AssertionError("n_jobs=1 must not spawn a pool")

        monkeypatch.setattr(ParallelMap, "_make_executor", forbidden)
        assert ParallelMap(1).map(_square, range(5)) == [
            x * x for x in range(5)
        ]

    def test_single_item_never_builds_a_pool(self, monkeypatch):
        def forbidden(self, max_workers):
            raise AssertionError("one item must not spawn a pool")

        monkeypatch.setattr(ParallelMap, "_make_executor", forbidden)
        assert ParallelMap(8).map(_square, [4]) == [16]

    @pytest.mark.parametrize("backend", ["thread", "process"])
    def test_workers_know_they_are_workers(self, backend):
        flags = parallel_map(_am_i_in_a_worker, range(4), n_jobs=2,
                             backend=backend)
        assert flags == [True] * 4
        assert in_worker() is False  # parent flag untouched

    def test_nested_map_runs_inline(self):
        out = parallel_map(_nested_map, range(3), n_jobs=2,
                           backend="thread")
        assert out == [(True, [1, 4, 9])] * 3

    @pytest.mark.parametrize("backend", ["thread", "process"])
    def test_errors_observed_in_completion_order(self, backend):
        # Item 0 (the first-submitted chunk) sleeps a full second;
        # item 1 fails instantly.  Fail-fast must consume errors in
        # *completion* order: the fast failure aborts the map without
        # waiting behind the slow earlier chunk.
        import time

        started = time.monotonic()
        with pytest.raises(RuntimeError, match="fast failure"):
            ParallelMap(2, backend=backend, chunk_size=1).map(
                _slow_success_or_fast_boom, [0, 1]
            )
        elapsed = time.monotonic() - started
        assert elapsed < 0.9, (
            f"error waited {elapsed:.2f}s behind an earlier slow chunk"
        )


class TestObsMerging:
    def test_process_spans_reparented_and_metrics_merged(self):
        tracer = Tracer()
        metrics = MetricsRegistry()
        with use_tracer(tracer), use_metrics(metrics):
            with tracer.span("call.site") as caller:
                out = parallel_map(_traced_unit, range(5), n_jobs=2,
                                   backend="process")
        assert out == [x * 10 for x in range(5)]

        workers = [s for s in tracer.spans if s.name == "worker.task"]
        assert len(workers) == 5
        assert {s.parent_id for s in workers} == {caller.span_id}
        assert sorted(s.attrs["item"] for s in workers) == [0, 1, 2, 3, 4]
        ids = [s.span_id for s in tracer.spans]
        assert len(ids) == len(set(ids))  # absorb re-issues unique ids

        snap = metrics.snapshot()
        assert snap["counters"]["worker.items"] == 5
        assert snap["histograms"]["worker.value"]["count"] == 5

    def test_thread_spans_nest_under_call_site(self):
        tracer = Tracer()
        metrics = MetricsRegistry()
        with use_tracer(tracer), use_metrics(metrics):
            with tracer.span("call.site") as caller:
                parallel_map(_traced_unit, range(4), n_jobs=2,
                             backend="thread")
        workers = [s for s in tracer.spans if s.name == "worker.task"]
        assert len(workers) == 4
        assert {s.parent_id for s in workers} == {caller.span_id}
        assert metrics.snapshot()["counters"]["worker.items"] == 4

    def test_absorb_preserves_internal_nesting(self):
        worker = Tracer()
        with worker.span("outer"):
            with worker.span("inner"):
                pass
        parent = Tracer()
        with parent.span("root") as root:
            parent.absorb([s.to_dict() for s in worker.spans],
                          parent_id=root.span_id)
        by_name = {s.name: s for s in parent.spans}
        assert by_name["outer"].parent_id == root.span_id
        assert by_name["inner"].parent_id == by_name["outer"].span_id


class TestSpawnSeeds:
    def test_deterministic_and_independent(self):
        a = spawn_seeds(42, 5)
        b = spawn_seeds(42, 5)
        assert len(a) == 5
        assert [s.generate_state(2).tolist() for s in a] == \
               [s.generate_state(2).tolist() for s in b]
        states = {tuple(s.generate_state(2).tolist()) for s in a}
        assert len(states) == 5  # children differ from each other

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            spawn_seeds(0, -1)
