"""Persistent worker pools: reuse, warmup, crash rebuilds, teardown.

The pool's contract is that reuse is purely an execution-shape
optimisation: every ``map`` under :func:`use_pool` returns exactly the
bytes a throwaway pool (or the serial path) would, while the
``parallel.pool_builds`` / ``parallel.pool_reuse`` counters prove the
same executor served every call.
"""

import os
from functools import partial

import numpy as np
import pytest

from repro.obs import MetricsRegistry, use_metrics
from repro.parallel import (
    ParallelMap,
    WorkerPool,
    current_pool,
    use_pool,
)


def _square(x):
    return x * x


def _touch_and_square(x, marker_dir):
    open(os.path.join(marker_dir, f"{os.getpid()}.worker"), "w").close()
    return x * x


def _crash_below(x, threshold, marker_dir):
    """Crash the worker once per item below ``threshold``."""
    from repro.parallel import in_worker

    marker = os.path.join(marker_dir, f"{x}.crashed")
    if in_worker() and x < threshold and not os.path.exists(marker):
        open(marker, "w").close()
        os._exit(1)
    return x * 3


def _write_warm_marker(marker_dir):
    open(os.path.join(marker_dir, f"{os.getpid()}.warm"), "w").close()


class TestReuse:
    def test_one_build_serves_many_maps(self):
        registry = MetricsRegistry()
        with use_metrics(registry), WorkerPool(n_jobs=2) as pool:
            with use_pool(pool):
                first = ParallelMap(2).map(_square, range(8))
                second = ParallelMap(2).map(_square, range(8, 16))
        assert first == [x * x for x in range(8)]
        assert second == [x * x for x in range(8, 16)]
        snapshot = registry.snapshot()["counters"]
        assert snapshot["parallel.pool_builds"] == 1
        assert snapshot["parallel.pool_reuse"] >= 1

    def test_current_pool_scoping(self):
        with WorkerPool(n_jobs=2) as pool:
            assert current_pool() is None
            with use_pool(pool):
                assert current_pool() is pool
            assert current_pool() is None
        # A closed pool is never handed out even inside its scope.
        with use_pool(pool):
            assert current_pool() is None

    def test_lease_after_close_raises(self):
        pool = WorkerPool(n_jobs=2)
        pool.close()
        with pytest.raises(RuntimeError):
            pool.lease()


class TestWarmup:
    def test_warmup_runs_in_every_worker(self, tmp_path):
        marker_dir = str(tmp_path)
        warmup = partial(_write_warm_marker, marker_dir)
        with WorkerPool(n_jobs=2, warmup=warmup) as pool:
            with use_pool(pool):
                ParallelMap(2).map(
                    partial(_touch_and_square, marker_dir=marker_dir),
                    range(8),
                )
        worked = {f.split(".")[0] for f in os.listdir(marker_dir)
                  if f.endswith(".worker")}
        warmed = {f.split(".")[0] for f in os.listdir(marker_dir)
                  if f.endswith(".warm")}
        assert worked, "no worker ever ran"
        assert worked <= warmed, "a worker ran without being warmed"


class TestCrashRebuild:
    def test_crash_rebuilds_and_results_stay_bit_identical(self, tmp_path):
        items = list(range(6))
        serial = [x * 3 for x in items]
        registry = MetricsRegistry()
        with use_metrics(registry), WorkerPool(n_jobs=2) as pool:
            with use_pool(pool):
                crashed = ParallelMap(2).map(
                    partial(_crash_below, threshold=2,
                            marker_dir=str(tmp_path)),
                    items,
                )
                after = ParallelMap(2).map(_square, items)
        assert crashed == serial
        assert after == [x * x for x in items]
        snapshot = registry.snapshot()["counters"]
        # The crash invalidated the first executor; the later rounds
        # (retries + the follow-up map) forked at least one more.
        assert snapshot["parallel.pool_builds"] >= 2

    def test_dataset_survives_rebuild_and_closes_with_pool(self):
        arr = np.random.default_rng(0).normal(size=(256, 64))
        pool = WorkerPool(n_jobs=2)
        shared = pool.dataset.share(arr)
        name = getattr(getattr(shared, "_shm", None), "name", None)
        executor = pool.lease()
        if executor is not None:
            pool.reap(executor, kill=True)  # simulated dirty round
            assert pool._executor is None
            assert pool.lease() is not None  # rebuilt on demand
        if name is not None:
            assert os.path.exists(os.path.join("/dev/shm", name))
        pool.close()
        if name is not None:
            assert not os.path.exists(os.path.join("/dev/shm", name))

    def test_caller_owned_dataset_left_open(self):
        from repro.parallel import SharedDataset

        with SharedDataset() as dataset:
            pool = WorkerPool(n_jobs=2, dataset=dataset)
            pool.close()
            assert not dataset.closed
