"""TaskGraph: ordering, caching, supplied results, failure propagation.

The graph is the pipeline's one composition of caching, checkpoint
resume and pooled fan-out, so these tests pin its contract directly:
deterministic insertion-order scheduling, cache hits short-circuiting
execution, supplied results never re-running, and failures skipping
dependents with the established ``ItemFailure`` shape.
"""

import pytest

from repro.parallel import ItemFailure, ParallelMap, TaskGraph


def _const(value):
    return lambda: value


def _boom():
    raise RuntimeError("boom")


def _add_one(x):
    return x + 1


class TestScheduling:
    def test_results_and_order_respect_dependencies(self):
        order = []

        def step(name):
            def run():
                order.append(name)
                return name.upper()
            return run

        graph = TaskGraph()
        graph.add("c", step("c"), deps=("a", "b"))
        graph.add("a", step("a"))
        graph.add("b", step("b"), deps=("a",))
        results = graph.run()
        assert results == {"a": "A", "b": "B", "c": "C"}
        assert order == ["a", "b", "c"]

    def test_incremental_runs_pick_up_new_nodes(self):
        graph = TaskGraph()
        graph.add("a", _const(1))
        assert graph.run() == {"a": 1}
        graph.add("b", lambda: graph.results["a"] + 1, deps=("a",))
        assert graph.run()["b"] == 2

    def test_unknown_dependency_raises(self):
        graph = TaskGraph()
        graph.add("a", _const(1), deps=("ghost",))
        with pytest.raises(KeyError, match="ghost"):
            graph.run()

    def test_cycle_raises(self):
        graph = TaskGraph()
        graph.add("a", _const(1), deps=("b",))
        graph.add("b", _const(2), deps=("a",))
        with pytest.raises(ValueError, match="cycle"):
            graph.run()

    def test_duplicate_key_raises(self):
        graph = TaskGraph()
        graph.add("a", _const(1))
        with pytest.raises(ValueError, match="duplicate"):
            graph.add("a", _const(2))

    def test_pooled_nodes_match_inline(self):
        from functools import partial

        def build():
            graph = TaskGraph()
            for i in range(6):
                graph.add(f"n{i}", partial(_add_one, i))
            return graph

        inline = build().run()
        pooled = build().run(mapper=ParallelMap(2))
        assert pooled == inline


class TestCaching:
    def test_cache_hit_short_circuits_execution(self):
        ran, stored = [], []

        def cache_get(key, cache_key):
            return (True, "cached-value") if key == "hit" else (False,
                                                                None)

        def cache_put(key, cache_key, value):
            stored.append((key, cache_key, value))

        graph = TaskGraph()
        graph.add("hit", lambda: ran.append("hit"), cache_key="k1")
        graph.add("miss", _const(7), cache_key="k2")
        graph.add("nocache", _const(8))
        results = graph.run(cache_get=cache_get, cache_put=cache_put)
        assert results["hit"] == "cached-value"
        assert ran == []  # the hit node never executed
        assert graph.cache_hits == {"hit"}
        assert stored == [("miss", "k2", 7)]  # only fresh, keyed nodes

    def test_store_result_false_skips_cache_put(self):
        stored = []
        graph = TaskGraph()
        graph.add("a", _const(1), cache_key="k",
                  store_result=False)
        graph.run(cache_get=lambda *a: (False, None),
                  cache_put=lambda *a: stored.append(a))
        assert stored == []

    def test_supplied_results_never_run(self):
        graph = TaskGraph()
        graph.add("a", _boom)
        graph.supply("a", 42)
        graph.add("b", lambda: graph.results["a"] + 1, deps=("a",))
        assert graph.run() == {"a": 42, "b": 43}
        with pytest.raises(ValueError, match="already resolved"):
            graph.supply("a", 0)


class TestFailures:
    def test_failure_raises_by_default(self):
        graph = TaskGraph()
        graph.add("a", _boom)
        with pytest.raises(RuntimeError, match="boom"):
            graph.run()

    def test_captured_failure_skips_dependents(self):
        graph = TaskGraph()
        graph.add("a", _boom)
        graph.add("b", _const(2), deps=("a",))
        graph.add("c", _const(3))
        results = graph.run(return_exceptions=True)
        assert results == {"c": 3}
        assert isinstance(graph.failures["a"], ItemFailure)
        assert graph.failures["a"].error_type == "RuntimeError"
        assert graph.failures["b"].error_type == "DependencyFailed"
        assert "a" in graph.failures["b"].message

    def test_skip_propagates_transitively(self):
        graph = TaskGraph()
        graph.add("a", _boom)
        graph.add("b", _const(1), deps=("a",))
        graph.add("c", _const(2), deps=("b",))
        graph.run(return_exceptions=True)
        assert graph.failures["c"].error_type == "DependencyFailed"

    def test_pooled_failure_is_captured(self):
        from functools import partial

        graph = TaskGraph()
        graph.add("bad", _boom)
        graph.add("good", partial(_add_one, 4))
        results = graph.run(mapper=ParallelMap(2),
                            return_exceptions=True)
        assert results == {"good": 5}
        assert graph.failures["bad"].error_type == "RuntimeError"
