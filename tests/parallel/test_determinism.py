"""Bit-identical results for any ``n_jobs`` — the layer's core contract.

Every parallelised stage draws its randomness from pre-spawned seeds (or
pre-drawn permutation matrices), so splitting the work across workers
cannot change which numbers are drawn.  These tests compare serial
(``n_jobs=1``) against multi-worker runs with ``==`` on the raw floats:
no tolerances.
"""

import dataclasses

import numpy as np
import pytest

from repro.core.fra import FRAConfig, fra_reduce
from repro.core.pipeline import ExperimentConfig, run_experiment
from repro.core.selection import SHAPConfig
from repro.core.improvement import ImprovementConfig
from repro.ml.boosting import GradientBoostingRegressor
from repro.ml.forest import RandomForestRegressor
from repro.ml.importance import permutation_importance
from repro.ml.model_selection import GridSearchCV, KFold
from repro.ml.shap import shap_importance
from repro.synth.config import SimulationConfig


@pytest.fixture(scope="module")
def data():
    rng = np.random.default_rng(7)
    X = rng.normal(size=(90, 12))
    y = X[:, 0] * 2.0 - X[:, 3] + 0.1 * rng.normal(size=90)
    return X, y


def _forest(n_jobs, X, y):
    return RandomForestRegressor(
        n_estimators=9, max_depth=6, max_features="sqrt",
        random_state=3, n_jobs=n_jobs,
    ).fit(X, y)


class TestForestDeterminism:
    def test_predictions_bit_identical(self, data):
        X, y = data
        serial = _forest(1, X, y)
        parallel = _forest(4, X, y)
        assert np.array_equal(serial.predict(X), parallel.predict(X))

    def test_importances_bit_identical(self, data):
        X, y = data
        assert np.array_equal(
            _forest(1, X, y).feature_importances_,
            _forest(4, X, y).feature_importances_,
        )


class TestPFIDeterminism:
    def test_values_bit_identical(self, data):
        X, y = data
        model = _forest(1, X, y)
        serial = permutation_importance(
            model, X, y, n_repeats=3, random_state=11, n_jobs=1
        )
        parallel = permutation_importance(
            model, X, y, n_repeats=3, random_state=11, n_jobs=4
        )
        assert np.array_equal(serial, parallel)


class TestGridSearchDeterminism:
    def test_winner_and_scores_identical(self, data):
        X, y = data
        grid = {"n_estimators": [5, 9], "max_depth": [4, 7]}

        def run(n_jobs):
            return GridSearchCV(
                RandomForestRegressor(random_state=0),
                grid, cv=KFold(3, shuffle=True, random_state=0),
                refit=False, n_jobs=n_jobs,
            ).fit(X, y)

        serial, parallel = run(1), run(4)
        assert serial.best_params_ == parallel.best_params_
        assert serial.best_score_ == parallel.best_score_
        assert [c["mean_score"] for c in serial.cv_results_] == \
               [c["mean_score"] for c in parallel.cv_results_]


class TestSHAPDeterminism:
    def test_importance_bit_identical(self, data):
        X, y = data
        model = GradientBoostingRegressor(
            n_estimators=8, max_depth=3, random_state=0
        ).fit(X, y)
        serial = shap_importance(model, X, max_samples=30,
                                 random_state=0, n_jobs=1)
        parallel = shap_importance(model, X, max_samples=30,
                                   random_state=0, n_jobs=4)
        assert np.array_equal(serial, parallel)


class TestFRADeterminism:
    def test_selected_features_identical(self, data):
        X, y = data
        names = [f"f{i}" for i in range(X.shape[1])]

        def run(n_jobs):
            return fra_reduce(X, y, names, FRAConfig(
                target_size=6, pfi_repeats=2, pfi_max_rows=60,
                rf_params={"n_estimators": 6, "max_depth": 5,
                           "max_features": "sqrt", "min_samples_leaf": 2},
                gb_params={"n_estimators": 8, "max_depth": 3,
                           "learning_rate": 0.2, "max_features": "sqrt",
                           "subsample": 0.8, "reg_lambda": 1.0},
                n_jobs=n_jobs,
            ))

        serial, parallel = run(1), run(4)
        assert serial.selected == parallel.selected
        assert serial.importances == parallel.importances
        assert serial.history == parallel.history


def _tiny_pipeline_config(n_jobs):
    """A complete but minimal experiment: one period, one window."""
    return ExperimentConfig(
        simulation=SimulationConfig(
            start="2018-06-01", end="2020-06-30", seed=5, n_assets=105,
        ),
        fra=FRAConfig(
            target_size=15, pfi_repeats=1, pfi_max_rows=80,
            rf_params={"n_estimators": 5, "max_depth": 6,
                       "max_features": "sqrt", "min_samples_leaf": 2},
            gb_params={"n_estimators": 8, "max_depth": 3,
                       "learning_rate": 0.2, "max_features": "sqrt",
                       "subsample": 0.8, "reg_lambda": 1.0},
        ),
        shap=SHAPConfig(
            gb_params={"n_estimators": 6, "max_depth": 3,
                       "learning_rate": 0.2, "subsample": 0.8,
                       "reg_lambda": 1.0},
            max_rows=12,
        ),
        improvement_rf=ImprovementConfig(
            model="rf",
            param_grid={"n_estimators": [6], "max_depth": [6],
                        "max_features": ["sqrt"]},
            cv_folds=3,
        ),
        top_k=10,
        periods=("2019",),
        windows=(7,),
        run_gb_validation=False,
        rf_importance_params={"n_estimators": 6, "max_depth": 6,
                              "max_features": "sqrt",
                              "min_samples_leaf": 2},
        n_jobs=n_jobs,
    )


class TestPipelineDeterminism:
    def test_full_run_identical_across_jobs(self):
        serial = run_experiment(_tiny_pipeline_config(1))
        parallel = run_experiment(_tiny_pipeline_config(2))

        assert serial.table1_vector_sizes() == \
            parallel.table1_vector_sizes()
        assert serial.mean_shap_overlap() == parallel.mean_shap_overlap()
        assert serial.table5_improvement_by_window("2019") == \
            parallel.table5_improvement_by_window("2019")
        key = next(iter(serial.artifacts))
        assert serial.artifacts[key].selection.final_features == \
            parallel.artifacts[key].selection.final_features
        assert serial.artifacts[key].rf_importance == \
            parallel.artifacts[key].rf_importance

        # Worker telemetry merges back: same span multiset, single root,
        # every parent resolvable.
        names = sorted(s.name for s in serial.run_summary.spans)
        assert names == sorted(
            s.name for s in parallel.run_summary.spans
        )
        roots = [s for s in parallel.run_summary.spans
                 if s.parent_id is None]
        assert [s.name for s in roots] == ["experiment.run"]
        ids = {s.span_id for s in parallel.run_summary.spans}
        assert all(s.parent_id in ids for s in parallel.run_summary.spans
                   if s.parent_id is not None)

    def test_config_env_resolution(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "2")
        config = _tiny_pipeline_config(None)
        results = run_experiment(dataclasses.replace(config, n_jobs=None))
        assert results.table1_vector_sizes()
