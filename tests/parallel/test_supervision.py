"""Crash-injection tests for the supervised process backend.

The injected faults are driven by *file-based attempt counters*: each
item records its attempt count in a shared directory before deciding to
die (``os._exit``), so a "transient" crash kills the worker exactly
once and the retry succeeds — across process boundaries and for any
pool geometry.  Crash schedules are drawn with ``random.Random(seed)``,
and every test asserts the supervised result is bit-identical to the
serial path: the package's determinism contract must hold for any
crash schedule.

All fault hooks are gated on :func:`repro.parallel.in_worker`, so the
serial comparison path (and the n_jobs=1 fast path) never injects.
"""

import os
import pickle
import random
import time
from functools import partial

import pytest

from repro.obs import MetricsRegistry, Tracer, use_metrics, use_tracer
from repro.parallel import (
    ItemFailure,
    ParallelMap,
    WorkerCrash,
    in_worker,
    resolve_task_retries,
    resolve_task_timeout,
)
from repro.parallel.supervision import (
    DEFAULT_TASK_RETRIES,
    ENV_TASK_RETRIES,
    ENV_TASK_TIMEOUT,
)


def _mark_attempt(counter_dir, item) -> int:
    """Record one attempt at ``item``; returns how many came before."""
    path = os.path.join(counter_dir, f"{item}.attempts")
    try:
        with open(path) as handle:
            before = int(handle.read() or 0)
    except FileNotFoundError:
        before = 0
    with open(path, "w") as handle:
        handle.write(str(before + 1))
    return before


def _transform(item):
    """The pure work under test (bit-identical anywhere it runs)."""
    return item * item + 1


def crash_once(item, counter_dir="", crash_items=()):
    """Die (exit 42) on the first attempt at selected items."""
    before = _mark_attempt(counter_dir, item)
    if item in crash_items and before == 0 and in_worker():
        os._exit(42)
    return _transform(item)


def crash_always(item, counter_dir="", crash_items=(), exit_code=39):
    """Die on *every* attempt at selected items: a poison item."""
    _mark_attempt(counter_dir, item)
    if item in crash_items and in_worker():
        os._exit(exit_code)
    return _transform(item)


def hang(item, hang_items=(), slow_s=0.0):
    """Sleep effectively forever on selected items."""
    if item in hang_items and in_worker():
        time.sleep(600)
    if slow_s:
        time.sleep(slow_s)
    return _transform(item)


def slow_then_crash(item, counter_dir="", crash_items=(), delay_s=0.5,
                    always=True):
    """Give the other chunks a head start, then die.

    ``always=False`` makes the crash transient (first attempt only).
    """
    before = _mark_attempt(counter_dir, item)
    if item in crash_items and in_worker() and (always or before == 0):
        time.sleep(delay_s)
        os._exit(41)
    return _transform(item)


class TestTransientCrashRecovery:
    @pytest.mark.parametrize("seed", [0, 7])
    def test_bit_identical_to_serial_for_any_crash_schedule(
            self, tmp_path, seed):
        items = list(range(12))
        crash_items = tuple(random.Random(seed).sample(items, 3))
        fn = partial(crash_once, counter_dir=str(tmp_path),
                     crash_items=crash_items)
        registry = MetricsRegistry()
        with use_metrics(registry):
            got = ParallelMap(n_jobs=3).map(fn, items)
        assert got == [_transform(i) for i in items]
        counters = registry.snapshot()["counters"]
        assert counters["parallel.worker_crashes"] >= 1
        assert counters["parallel.retries"] >= 1
        assert counters["parallel.resubmitted_items"] >= 1

    def test_completed_work_is_not_recomputed(self, tmp_path):
        # Only the crashing item and its chunk-mates may retry: items in
        # chunks that completed before the crash run exactly once.
        items = list(range(8))
        fn = partial(slow_then_crash, counter_dir=str(tmp_path),
                     crash_items=(7,), delay_s=0.6, always=False)
        got = ParallelMap(n_jobs=4).map(fn, items)
        assert got == [_transform(i) for i in items]
        attempts = {
            int(p.name.split(".")[0]): int(p.read_text())
            for p in tmp_path.glob("*.attempts")
        }
        # The first chunk (items 0-1) finished well inside the 0.6s
        # head start, so the pool breakage never touched it.
        assert attempts[0] == 1
        assert attempts[1] == 1

    def test_pool_broken_event_recorded(self, tmp_path):
        tracer = Tracer()
        fn = partial(crash_once, counter_dir=str(tmp_path),
                     crash_items=(2,))
        with use_tracer(tracer):
            ParallelMap(n_jobs=2).map(fn, list(range(6)))
        names = {s.name for s in tracer.spans}
        assert "parallel.pool_broken" in names


class TestPoisonIsolation:
    def test_capture_mode_isolates_the_poison_item(self, tmp_path):
        items = list(range(10))
        fn = partial(crash_always, counter_dir=str(tmp_path),
                     crash_items=(6,))
        registry = MetricsRegistry()
        tracer = Tracer()
        with use_metrics(registry), use_tracer(tracer):
            got = ParallelMap(n_jobs=3).map(fn, items,
                                            return_exceptions=True)
        for i in items:
            if i == 6:
                continue
            assert got[i] == _transform(i), f"item {i} not recovered"
        failure = got[6]
        assert isinstance(failure, ItemFailure)
        assert failure.error_type == "WorkerCrash"
        assert failure.index == 6
        crash = failure.exception
        assert isinstance(crash, WorkerCrash)
        assert crash.reason == "crash"
        assert crash.exitcode == 39
        counters = registry.snapshot()["counters"]
        assert counters["parallel.worker_crashes"] >= 1
        assert "parallel.poison_isolated" in {
            s.name for s in tracer.spans
        }

    def test_default_mode_raises_worker_crash(self, tmp_path):
        fn = partial(crash_always, counter_dir=str(tmp_path),
                     crash_items=(3,))
        with pytest.raises(WorkerCrash) as excinfo:
            ParallelMap(n_jobs=2).map(fn, list(range(6)))
        assert excinfo.value.reason == "crash"
        assert excinfo.value.index == 3

    def test_worker_crash_survives_pickling(self):
        crash = WorkerCrash("item 3: worker died", index=3,
                            reason="crash", exitcode=-9, signal=9)
        clone = pickle.loads(pickle.dumps(crash))
        assert isinstance(clone, WorkerCrash)
        assert (clone.index, clone.reason, clone.exitcode,
                clone.signal) == (3, "crash", -9, 9)
        assert str(clone) == str(crash)


class TestDeadlines:
    def test_hung_item_killed_and_reported(self, tmp_path):
        items = list(range(5))
        fn = partial(hang, hang_items=(2,))
        registry = MetricsRegistry()
        with use_metrics(registry):
            started = time.monotonic()
            got = ParallelMap(n_jobs=2, timeout=0.75, chunk_size=1).map(
                fn, items, return_exceptions=True
            )
            elapsed = time.monotonic() - started
        assert elapsed < 60, "hung worker was not killed"
        for i in items:
            if i == 2:
                continue
            assert got[i] == _transform(i)
        failure = got[2]
        assert isinstance(failure, ItemFailure)
        assert isinstance(failure.exception, WorkerCrash)
        assert failure.exception.reason == "timeout"
        assert registry.snapshot()["counters"]["parallel.timeouts"] >= 1

    def test_timeout_raises_in_default_mode(self):
        fn = partial(hang, hang_items=(1,))
        with pytest.raises(WorkerCrash) as excinfo:
            ParallelMap(n_jobs=2, timeout=0.5, chunk_size=1).map(
                fn, list(range(4))
            )
        assert excinfo.value.reason == "timeout"

    def test_no_deadline_means_slow_items_finish(self):
        fn = partial(hang, slow_s=0.1)
        got = ParallelMap(n_jobs=2).map(fn, list(range(4)))
        assert got == [_transform(i) for i in range(4)]


class TestRetryBudget:
    def test_budget_exhaustion_fails_unresolved_items(self, tmp_path):
        # Item 1 takes 0.5s then dies, every attempt; item 0 finishes
        # instantly and is harvested before the pool breaks.  With a
        # zero budget there is no second round: item 1 must surface as
        # a reason="budget" failure, not hang the map.
        fn = partial(slow_then_crash, counter_dir=str(tmp_path),
                     crash_items=(1,), delay_s=0.5)
        got = ParallelMap(n_jobs=2, chunk_size=1, max_retries=0).map(
            fn, [0, 1], return_exceptions=True
        )
        assert got[0] == _transform(0)
        failure = got[1]
        assert isinstance(failure, ItemFailure)
        assert isinstance(failure.exception, WorkerCrash)
        assert failure.exception.reason == "budget"

    def test_budget_exhaustion_raises_in_default_mode(self, tmp_path):
        fn = partial(slow_then_crash, counter_dir=str(tmp_path),
                     crash_items=(1,), delay_s=0.5)
        with pytest.raises(WorkerCrash) as excinfo:
            ParallelMap(n_jobs=2, chunk_size=1, max_retries=0).map(
                fn, [0, 1]
            )
        assert excinfo.value.reason == "budget"


class TestResolvers:
    def test_timeout_default_is_none(self, monkeypatch):
        monkeypatch.delenv(ENV_TASK_TIMEOUT, raising=False)
        assert resolve_task_timeout() is None

    def test_timeout_env_resolution(self, monkeypatch):
        monkeypatch.setenv(ENV_TASK_TIMEOUT, "2.5")
        assert resolve_task_timeout() == 2.5
        assert resolve_task_timeout(10) == 10.0  # arg wins

    def test_timeout_rejects_garbage(self, monkeypatch):
        monkeypatch.setenv(ENV_TASK_TIMEOUT, "soon")
        with pytest.raises(ValueError, match="REPRO_TASK_TIMEOUT"):
            resolve_task_timeout()
        with pytest.raises(ValueError, match="> 0"):
            resolve_task_timeout(0)
        with pytest.raises(ValueError, match="> 0"):
            resolve_task_timeout(-1)
        with pytest.raises(TypeError):
            resolve_task_timeout(True)

    def test_retries_default(self, monkeypatch):
        monkeypatch.delenv(ENV_TASK_RETRIES, raising=False)
        assert resolve_task_retries() == DEFAULT_TASK_RETRIES

    def test_retries_env_resolution(self, monkeypatch):
        monkeypatch.setenv(ENV_TASK_RETRIES, "3")
        assert resolve_task_retries() == 3
        assert resolve_task_retries(0) == 0  # arg wins; zero is legal

    def test_retries_rejects_garbage(self, monkeypatch):
        monkeypatch.setenv(ENV_TASK_RETRIES, "many")
        with pytest.raises(ValueError, match="REPRO_TASK_RETRIES"):
            resolve_task_retries()
        with pytest.raises(ValueError, match=">= 0"):
            resolve_task_retries(-1)
        with pytest.raises(TypeError):
            resolve_task_retries(True)

    def test_parallel_map_carries_the_knobs(self):
        mapper = ParallelMap(n_jobs=2, timeout=1.5, max_retries=4)
        assert mapper.timeout == 1.5
        assert mapper.max_retries == 4
