"""Smoke tests: every example script runs end-to-end on a small seed.

The examples are user-facing documentation; they must never rot. Each is
executed in-process (import + main) against the default seed but with a
monkeypatched fast simulation so the whole module stays quick.
"""

import importlib.util
import sys
from pathlib import Path

import pytest

from repro.synth import SimulationConfig

EXAMPLES_DIR = Path(__file__).parent.parent / "examples"

FAST_SIM = SimulationConfig(
    start="2016-06-01", end="2020-06-30", seed=42, n_assets=105,
)


def load_example(name: str):
    path = EXAMPLES_DIR / f"{name}.py"
    spec = importlib.util.spec_from_file_location(f"example_{name}", path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


@pytest.fixture(autouse=True)
def fast_simulation(monkeypatch):
    """Force every example onto a small, fast simulation window."""
    import repro.synth.config as config_mod

    original = config_mod.SimulationConfig

    def small_config(*args, **kwargs):
        kwargs.setdefault("start", FAST_SIM.start)
        kwargs.setdefault("end", FAST_SIM.end)
        kwargs.setdefault("n_assets", FAST_SIM.n_assets)
        return original(*args, **kwargs)

    for target in (
        "repro.synth.config.SimulationConfig",
        "repro.synth.SimulationConfig",
        "repro.SimulationConfig",
    ):
        module_name, attr = target.rsplit(".", 1)
        monkeypatch.setattr(sys.modules[module_name], attr, small_config)


class TestExamples:
    def test_examples_exist(self):
        names = {p.stem for p in EXAMPLES_DIR.glob("*.py")}
        assert {"quickstart", "crypto100_index", "horizon_study",
                "portfolio_backtest"} <= names

    def test_crypto100_index_example(self, capsys):
        load_example("crypto100_index").main(seed=42)
        out = capsys.readouterr().out
        assert "Figure 1" in out
        assert "best power by tracking distance" in out

    def test_quickstart_example(self, capsys):
        load_example("quickstart").main(seed=42)
        out = capsys.readouterr().out
        assert "final vector" in out
        assert "improvement of diverse over technical-only" in out

    def test_horizon_study_example(self, capsys):
        load_example("horizon_study").main(seed=42)
        out = capsys.readouterr().out
        assert "Share of total model importance" in out
        assert "w=180" in out

    def test_portfolio_backtest_example(self, capsys):
        load_example("portfolio_backtest").main(seed=42)
        out = capsys.readouterr().out
        assert "Walk-forward long/flat backtest" in out
        assert "buy & hold" in out

    def test_feature_engineering_example(self, capsys):
        load_example("feature_engineering").main(seed=42)
        out = capsys.readouterr().out
        assert "Cross-category feature engineering" in out
        assert "MVRV-style ratio" in out

    def test_resilient_portfolio_example(self, capsys):
        load_example("resilient_portfolio").main(seed=42)
        out = capsys.readouterr().out
        assert "crypto portfolio" in out
        assert "risk parity" in out
        assert "calmest allocation" in out

    def test_category_deep_dive_example(self, capsys):
        load_example("category_deep_dive").main(seed=42)
        out = capsys.readouterr().out
        assert "Standalone predictive power" in out
        assert "Top 5 features inside each category" in out
