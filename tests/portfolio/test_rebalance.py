"""Unit tests for the multi-asset rebalancing simulator."""

import numpy as np
import pytest

from repro.portfolio import (
    RebalanceConfig,
    equal_weights,
    min_variance_weights,
    sample_covariance,
    simulate_portfolio,
)


@pytest.fixture
def price_panel():
    rng = np.random.default_rng(0)
    n, a = 300, 4
    drift = np.array([0.001, 0.0005, 0.0, -0.0005])
    rets = drift + rng.normal(0, 0.02, size=(n, a))
    return 100.0 * np.exp(np.cumsum(rets, axis=0))


def equal_rule(trailing):
    return equal_weights(trailing.shape[1])


class TestSimulation:
    def test_shapes(self, price_panel):
        cfg = RebalanceConfig(lookback=60, rebalance_every=20)
        run = simulate_portfolio(price_panel, equal_rule, cfg)
        span = price_panel.shape[0] - 60
        assert run.equity.shape == (span,)
        assert run.weights.shape == (span, 4)

    def test_equity_starts_near_one(self, price_panel):
        run = simulate_portfolio(price_panel, equal_rule,
                                 RebalanceConfig(cost_bps=0.0))
        assert run.equity[0] == pytest.approx(1.0)

    def test_costs_reduce_equity(self, price_panel):
        free = simulate_portfolio(price_panel, equal_rule,
                                  RebalanceConfig(cost_bps=0.0))
        costly = simulate_portfolio(price_panel, equal_rule,
                                    RebalanceConfig(cost_bps=50.0))
        assert costly.equity[-1] < free.equity[-1]
        assert costly.total_costs > 0

    def test_single_asset_equivalent_to_price(self):
        rng = np.random.default_rng(1)
        prices = 100 * np.exp(np.cumsum(rng.normal(0, 0.02, (200, 1)),
                                        axis=0))
        run = simulate_portfolio(
            prices, lambda tr: np.array([1.0]),
            RebalanceConfig(lookback=20, cost_bps=0.0),
        )
        expected = prices[20:, 0] / prices[20, 0]
        assert np.allclose(run.equity, expected, rtol=1e-9)

    def test_min_variance_rule_reduces_vol(self, price_panel):
        """Optimised weights must not be more volatile than 1/N by a
        wide margin (generally they are calmer)."""
        def minvar_rule(trailing):
            return min_variance_weights(sample_covariance(trailing))

        cfg = RebalanceConfig(lookback=90, rebalance_every=30,
                              cost_bps=0.0)
        naive = simulate_portfolio(price_panel, equal_rule, cfg)
        optimised = simulate_portfolio(price_panel, minvar_rule, cfg)
        vol_naive = np.diff(np.log(naive.equity)).std()
        vol_opt = np.diff(np.log(optimised.equity)).std()
        assert vol_opt < vol_naive * 1.2

    def test_weight_drift_between_rebalances(self, price_panel):
        cfg = RebalanceConfig(lookback=60, rebalance_every=100,
                              cost_bps=0.0)
        run = simulate_portfolio(price_panel, equal_rule, cfg)
        # immediately after rebalance weights are exactly equal; later
        # they drift with relative performance
        assert np.allclose(run.weights[0], 0.25)
        drifted = run.weights[99]
        assert not np.allclose(drifted, 0.25)
        assert drifted.sum() == pytest.approx(1.0)

    def test_summary_keys(self, price_panel):
        run = simulate_portfolio(price_panel, equal_rule)
        summary = run.summary()
        for key in ("sharpe", "max_drawdown", "annualized_return",
                    "n_rebalances"):
            assert key in summary


class TestValidation:
    def test_bad_config(self):
        with pytest.raises(ValueError):
            RebalanceConfig(lookback=1)
        with pytest.raises(ValueError):
            RebalanceConfig(rebalance_every=0)
        with pytest.raises(ValueError):
            RebalanceConfig(cost_bps=-1)

    def test_bad_inputs(self, price_panel):
        with pytest.raises(ValueError):
            simulate_portfolio(price_panel[:50],
                               equal_rule,
                               RebalanceConfig(lookback=60))
        with pytest.raises(ValueError):
            simulate_portfolio(-price_panel, equal_rule)
        with pytest.raises(ValueError):
            simulate_portfolio(price_panel[:, 0], equal_rule)

    def test_bad_weight_rule(self, price_panel):
        with pytest.raises(ValueError):
            simulate_portfolio(
                price_panel, lambda tr: np.array([2.0, -1.0, 0.0, 0.0])
            )
        with pytest.raises(ValueError):
            simulate_portfolio(price_panel, lambda tr: np.ones(3))
