"""Unit tests for repro.portfolio.covariance."""

import numpy as np
import pytest

from repro.portfolio import (
    ewma_covariance,
    sample_covariance,
    shrinkage_covariance,
)


@pytest.fixture(scope="module")
def returns():
    rng = np.random.default_rng(0)
    factor = rng.normal(0, 0.02, 500)
    return np.column_stack([
        factor + rng.normal(0, 0.01, 500),
        factor + rng.normal(0, 0.01, 500),
        rng.normal(0, 0.03, 500),
    ])


class TestSample:
    def test_matches_numpy(self, returns):
        ours = sample_covariance(returns)
        theirs = np.cov(returns, rowvar=False)
        assert np.allclose(ours, theirs)

    def test_symmetric_psd(self, returns):
        cov = sample_covariance(returns)
        assert np.allclose(cov, cov.T)
        assert np.linalg.eigvalsh(cov).min() >= -1e-12

    def test_correlated_assets_detected(self, returns):
        cov = sample_covariance(returns)
        corr01 = cov[0, 1] / np.sqrt(cov[0, 0] * cov[1, 1])
        corr02 = cov[0, 2] / np.sqrt(cov[0, 0] * cov[2, 2])
        assert corr01 > 0.5
        assert abs(corr02) < 0.2

    def test_validation(self):
        with pytest.raises(ValueError):
            sample_covariance(np.zeros(5))
        with pytest.raises(ValueError):
            sample_covariance(np.zeros((1, 3)))
        with pytest.raises(ValueError):
            sample_covariance(np.full((5, 2), np.nan))


class TestEWMA:
    def test_reduces_to_roughly_sample_for_huge_halflife(self, returns):
        ewma = ewma_covariance(returns, halflife=1e6)
        sample = sample_covariance(returns)
        assert np.allclose(ewma, sample, rtol=0.05)

    def test_recent_regime_dominates(self):
        rng = np.random.default_rng(1)
        calm = rng.normal(0, 0.01, size=(300, 2))
        wild = rng.normal(0, 0.05, size=(50, 2))
        returns = np.vstack([calm, wild])
        fast = ewma_covariance(returns, halflife=10)
        slow = ewma_covariance(returns, halflife=500)
        assert fast[0, 0] > slow[0, 0]

    def test_symmetric_psd(self, returns):
        cov = ewma_covariance(returns, halflife=20)
        assert np.allclose(cov, cov.T)
        assert np.linalg.eigvalsh(cov).min() >= -1e-12

    def test_bad_halflife(self, returns):
        with pytest.raises(ValueError):
            ewma_covariance(returns, halflife=0.0)


class TestShrinkage:
    def test_extremes(self, returns):
        none = shrinkage_covariance(returns, shrinkage=0.0)
        full = shrinkage_covariance(returns, shrinkage=1.0)
        sample = sample_covariance(returns)
        assert np.allclose(none, sample)
        # full shrinkage = scaled identity
        off_diag = full - np.diag(np.diag(full))
        assert np.allclose(off_diag, 0.0)
        assert np.allclose(np.diag(full), np.trace(sample) / 3)

    def test_auto_intensity_in_unit_interval(self, returns):
        auto = shrinkage_covariance(returns)
        sample = sample_covariance(returns)
        target_diag = np.trace(sample) / 3
        # auto result must lie between the two extremes elementwise trace
        assert np.trace(auto) == pytest.approx(np.trace(sample), rel=1e-6)
        # off-diagonals shrink toward zero, never past
        assert abs(auto[0, 1]) <= abs(sample[0, 1]) + 1e-12
        del target_diag

    def test_improves_conditioning_when_wide(self):
        """More assets than days: sample is singular, shrinkage is not."""
        rng = np.random.default_rng(2)
        returns = rng.normal(size=(20, 50))
        sample = sample_covariance(returns)
        shrunk = shrinkage_covariance(returns)
        assert np.linalg.eigvalsh(sample).min() < 1e-10
        assert np.linalg.eigvalsh(shrunk).min() > 1e-8

    def test_bad_intensity(self, returns):
        with pytest.raises(ValueError):
            shrinkage_covariance(returns, shrinkage=1.5)
