"""Property-based tests for portfolio optimizers and covariance."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.portfolio import (
    ewma_covariance,
    max_sharpe_weights,
    min_variance_weights,
    project_to_simplex,
    risk_parity_weights,
    sample_covariance,
    shrinkage_covariance,
)


@st.composite
def random_cov(draw, max_assets=6):
    seed = draw(st.integers(min_value=0, max_value=2**32 - 1))
    p = draw(st.integers(min_value=2, max_value=max_assets))
    rng = np.random.default_rng(seed)
    A = rng.normal(size=(p, p))
    return A @ A.T / p + 0.05 * np.eye(p)


@st.composite
def random_returns(draw, max_assets=5):
    seed = draw(st.integers(min_value=0, max_value=2**32 - 1))
    n = draw(st.integers(min_value=10, max_value=120))
    p = draw(st.integers(min_value=2, max_value=max_assets))
    rng = np.random.default_rng(seed)
    return rng.normal(0, 0.02, size=(n, p))


def _on_simplex(w):
    return (w >= -1e-10).all() and abs(w.sum() - 1.0) < 1e-8


class TestSimplexProperties:
    @settings(max_examples=80, deadline=None)
    @given(st.integers(min_value=0, max_value=2**32 - 1),
           st.integers(min_value=1, max_value=20))
    def test_always_on_simplex(self, seed, p):
        v = np.random.default_rng(seed).normal(0, 10, size=p)
        assert _on_simplex(project_to_simplex(v))

    @settings(max_examples=80, deadline=None)
    @given(st.integers(min_value=0, max_value=2**32 - 1),
           st.integers(min_value=1, max_value=10))
    def test_idempotent(self, seed, p):
        v = np.random.default_rng(seed).normal(size=p)
        once = project_to_simplex(v)
        twice = project_to_simplex(once)
        assert np.allclose(once, twice, atol=1e-12)

    @settings(max_examples=80, deadline=None)
    @given(st.integers(min_value=0, max_value=2**32 - 1),
           st.integers(min_value=1, max_value=10),
           st.floats(min_value=-5, max_value=5))
    def test_translation_invariance(self, seed, p, c):
        """Adding a constant to every coordinate leaves the projection
        unchanged (the simplex constraint absorbs it)."""
        v = np.random.default_rng(seed).normal(size=p)
        a = project_to_simplex(v)
        b = project_to_simplex(v + c)
        assert np.allclose(a, b, atol=1e-9)


class TestOptimizerProperties:
    @settings(max_examples=30, deadline=None)
    @given(random_cov())
    def test_min_variance_on_simplex(self, cov):
        assert _on_simplex(min_variance_weights(cov))

    @settings(max_examples=30, deadline=None)
    @given(random_cov())
    def test_min_variance_beats_equal_weight(self, cov):
        p = cov.shape[0]
        w = min_variance_weights(cov)
        eq = np.full(p, 1.0 / p)
        assert w @ cov @ w <= eq @ cov @ eq + 1e-9

    @settings(max_examples=30, deadline=None)
    @given(random_cov())
    def test_risk_parity_on_simplex_and_equalised(self, cov):
        w = risk_parity_weights(cov)
        assert _on_simplex(w)
        contributions = w * (cov @ w)
        assert contributions.max() / contributions.min() < 1.1

    @settings(max_examples=30, deadline=None)
    @given(random_cov(), st.integers(min_value=0, max_value=2**32 - 1))
    def test_max_sharpe_on_simplex(self, cov, seed):
        mu = np.random.default_rng(seed).uniform(0.01, 0.1, cov.shape[0])
        assert _on_simplex(max_sharpe_weights(mu, cov))


class TestCovarianceProperties:
    @settings(max_examples=30, deadline=None)
    @given(random_returns())
    def test_all_estimators_symmetric_psd(self, returns):
        for cov in (
            sample_covariance(returns),
            ewma_covariance(returns, halflife=20),
            shrinkage_covariance(returns),
        ):
            assert np.allclose(cov, cov.T, atol=1e-12)
            assert np.linalg.eigvalsh(cov).min() >= -1e-10

    @settings(max_examples=30, deadline=None)
    @given(random_returns())
    def test_shrinkage_trace_preserved(self, returns):
        sample = sample_covariance(returns)
        shrunk = shrinkage_covariance(returns)
        assert np.trace(shrunk) == pytest.approx(np.trace(sample),
                                                 rel=1e-9)

    @settings(max_examples=30, deadline=None)
    @given(random_returns(), st.floats(min_value=0.0, max_value=1.0))
    def test_shrinkage_interpolates(self, returns, intensity):
        sample = sample_covariance(returns)
        shrunk = shrinkage_covariance(returns, shrinkage=intensity)
        # off-diagonals scale by exactly (1 - intensity)
        p = sample.shape[0]
        off = ~np.eye(p, dtype=bool)
        assert np.allclose(
            shrunk[off], (1.0 - intensity) * sample[off], atol=1e-12
        )