"""Unit tests for repro.portfolio.optimizers."""

import numpy as np
import pytest

from repro.portfolio import (
    cap_weights,
    equal_weights,
    max_sharpe_weights,
    min_variance_weights,
    project_to_simplex,
    risk_parity_weights,
)


def _simplex(w):
    return (w >= -1e-12).all() and abs(w.sum() - 1.0) < 1e-9


class TestSimplexProjection:
    def test_already_on_simplex_unchanged(self):
        w = np.array([0.2, 0.3, 0.5])
        assert np.allclose(project_to_simplex(w), w)

    def test_output_on_simplex(self):
        rng = np.random.default_rng(0)
        for _ in range(20):
            v = rng.normal(0, 5, size=rng.integers(1, 10))
            assert _simplex(project_to_simplex(v))

    def test_projection_is_closest_point(self):
        """Check optimality against random simplex points."""
        rng = np.random.default_rng(1)
        v = rng.normal(size=4)
        p = project_to_simplex(v)
        dist_p = np.sum((v - p) ** 2)
        for _ in range(200):
            q = rng.dirichlet(np.ones(4))
            assert dist_p <= np.sum((v - q) ** 2) + 1e-9

    def test_single_asset(self):
        assert project_to_simplex(np.array([-5.0])).tolist() == [1.0]

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            project_to_simplex(np.array([]))


class TestBaselines:
    def test_equal_weights(self):
        w = equal_weights(4)
        assert np.allclose(w, 0.25)
        with pytest.raises(ValueError):
            equal_weights(0)

    def test_cap_weights(self):
        w = cap_weights([60.0, 30.0, 10.0])
        assert np.allclose(w, [0.6, 0.3, 0.1])
        with pytest.raises(ValueError):
            cap_weights([1.0, -1.0])
        with pytest.raises(ValueError):
            cap_weights([])


class TestMinVariance:
    def test_two_asset_analytic(self):
        """Uncorrelated assets: w_i proportional to 1/var_i."""
        cov = np.diag([0.04, 0.01])
        w = min_variance_weights(cov)
        assert _simplex(w)
        assert w[1] == pytest.approx(0.8, abs=0.01)

    def test_prefers_hedged_combination(self):
        # strongly anti-correlated pair forms a near-riskless combo
        cov = np.array([
            [0.04, -0.036, 0.0],
            [-0.036, 0.04, 0.0],
            [0.0, 0.0, 0.04],
        ])
        w = min_variance_weights(cov)
        assert w[0] + w[1] > 0.8
        var = w @ cov @ w
        assert var < 0.01

    def test_never_beaten_by_random_portfolios(self):
        rng = np.random.default_rng(3)
        A = rng.normal(size=(5, 5))
        cov = A @ A.T / 5 + 0.01 * np.eye(5)
        w = min_variance_weights(cov)
        var_opt = w @ cov @ w
        for _ in range(300):
            q = rng.dirichlet(np.ones(5))
            assert var_opt <= q @ cov @ q + 1e-6

    def test_validation(self):
        with pytest.raises(ValueError):
            min_variance_weights(np.zeros((2, 3)))
        asym = np.array([[1.0, 0.5], [0.2, 1.0]])
        with pytest.raises(ValueError):
            min_variance_weights(asym)


class TestMaxSharpe:
    def test_matches_analytic_tangency(self):
        """Diagonal covariance: tangency weights are proportional to the
        excess returns (C^-1 mu = mu / sigma^2)."""
        mu = np.array([0.10, 0.02, 0.02])
        cov = 0.04 * np.eye(3)
        w = max_sharpe_weights(mu, cov)
        assert _simplex(w)
        analytic = mu / mu.sum()
        assert np.allclose(w, analytic, atol=0.01)

    def test_diversifies_equal_assets(self):
        mu = np.array([0.05, 0.05])
        cov = 0.04 * np.eye(2)
        w = max_sharpe_weights(mu, cov)
        assert w[0] == pytest.approx(0.5, abs=0.05)

    def test_sharpe_not_beaten_by_random(self):
        rng = np.random.default_rng(4)
        mu = rng.uniform(0.01, 0.1, 4)
        A = rng.normal(size=(4, 4))
        cov = A @ A.T / 4 + 0.01 * np.eye(4)
        w = max_sharpe_weights(mu, cov)
        s_opt = (w @ mu) / np.sqrt(w @ cov @ w)
        for _ in range(300):
            q = rng.dirichlet(np.ones(4))
            s_q = (q @ mu) / np.sqrt(q @ cov @ q)
            assert s_opt >= s_q - 0.02

    def test_all_below_risk_free_picks_best(self):
        mu = np.array([0.01, 0.02])
        w = max_sharpe_weights(mu, 0.04 * np.eye(2), risk_free=0.05)
        assert w.tolist() == [0.0, 1.0]

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            max_sharpe_weights(np.ones(3), np.eye(2))


class TestRiskParity:
    def test_equal_vol_gives_equal_weights(self):
        cov = 0.04 * np.eye(3)
        w = risk_parity_weights(cov)
        assert np.allclose(w, 1 / 3, atol=1e-6)

    def test_risk_contributions_equalised(self):
        rng = np.random.default_rng(5)
        A = rng.normal(size=(4, 4))
        cov = A @ A.T / 4 + 0.05 * np.eye(4)
        w = risk_parity_weights(cov)
        contributions = w * (cov @ w)
        assert contributions.max() / contributions.min() < 1.01

    def test_low_vol_asset_gets_more_weight(self):
        cov = np.diag([0.09, 0.01])
        w = risk_parity_weights(cov)
        assert w[1] > w[0]
        # diagonal case: weights proportional to 1/sigma
        assert w[1] / w[0] == pytest.approx(3.0, abs=0.01)

    def test_on_simplex(self):
        rng = np.random.default_rng(6)
        A = rng.normal(size=(6, 6))
        cov = A @ A.T / 6 + 0.02 * np.eye(6)
        assert _simplex(risk_parity_weights(cov))

    def test_zero_variance_rejected(self):
        cov = np.diag([0.0, 1.0])
        with pytest.raises(ValueError):
            risk_parity_weights(cov)
