"""Property tests: O(n) rolling extrema and the ``extend_*`` tail ops.

Two families of equivalence, both against the slow obviously-correct
reference:

* :func:`repro.frame.ops.rolling_min` / ``rolling_max`` use the van
  Herk–Gil–Werman block-scan decomposition — value-identical to
  ``rolling_apply(values, window, np.min/np.max)`` for every window
  size, length, and NaN placement hypothesis can produce;
* every ``extend_<op>(old, new, ...)`` equals computing the op cold
  over ``concat(old, new)`` and slicing the tail — bit-identical
  (``tobytes``) for the cumsum-carried stats, value-identical for the
  extrema (a window holding both ``0.0`` and ``-0.0`` may pick either
  zero's sign).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.features import (
    extend_lag_features,
    extend_rolling_features,
    lag_features,
    rolling_features,
)
from repro.frame import Frame, date_range
from repro.frame.ops import (
    ROLLING_STATS,
    extend_log_returns,
    extend_pct_change,
    extend_rolling,
    extend_shift,
    log_returns,
    pct_change,
    rolling_apply,
    rolling_max,
    rolling_min,
    shift,
)

finite_floats = st.floats(
    allow_nan=False, allow_infinity=False, min_value=-1e9, max_value=1e9
)
maybe_nan_floats = st.one_of(finite_floats, st.just(float("nan")))


def series(max_size=80):
    return arrays(
        np.float64,
        st.integers(min_value=0, max_value=max_size),
        elements=maybe_nan_floats,
    )


windows = st.integers(min_value=1, max_value=12)


class TestRollingExtremaFastPath:
    @given(series(), windows)
    @settings(max_examples=150, deadline=None)
    def test_min_matches_reference(self, values, window):
        fast = rolling_min(values, window)
        slow = rolling_apply(values, window, np.min)
        assert np.array_equal(fast, slow, equal_nan=True)

    @given(series(), windows)
    @settings(max_examples=150, deadline=None)
    def test_max_matches_reference(self, values, window):
        fast = rolling_max(values, window)
        slow = rolling_apply(values, window, np.max)
        assert np.array_equal(fast, slow, equal_nan=True)

    def test_window_larger_than_series(self):
        assert np.all(np.isnan(rolling_min(np.arange(3.0), 5)))

    def test_rejects_bad_window(self):
        with pytest.raises(ValueError, match="window"):
            rolling_min(np.arange(4.0), 0)

    def test_nan_poisons_whole_window(self):
        values = np.array([1.0, np.nan, 3.0, 4.0, 5.0])
        out = rolling_max(values, 2)
        assert np.isnan(out[1]) and np.isnan(out[2])
        assert out[3] == 4.0 and out[4] == 5.0

    def test_large_series_exact_on_monotonic_runs(self):
        rng = np.random.default_rng(0)
        values = np.cumsum(rng.normal(size=5000))
        for window in (2, 17, 365):
            assert np.array_equal(
                rolling_min(values, window),
                rolling_apply(values, window, np.min),
                equal_nan=True,
            )


old_new = st.tuples(series(max_size=60), series(max_size=20))


class TestExtendOps:
    @given(old_new, st.integers(min_value=-5, max_value=5))
    @settings(max_examples=100, deadline=None)
    def test_extend_shift(self, pair, periods):
        old, new = pair
        cold = shift(np.concatenate((old, new)), periods)[old.size:]
        assert extend_shift(old, new, periods).tobytes() == cold.tobytes()

    @given(old_new, st.integers(min_value=1, max_value=5))
    @settings(max_examples=100, deadline=None)
    def test_extend_pct_change(self, pair, periods):
        old, new = pair
        with np.errstate(all="ignore"):
            cold = pct_change(
                np.concatenate((old, new)), periods
            )[old.size:]
            got = extend_pct_change(old, new, periods)
        assert got.tobytes() == cold.tobytes()

    @given(old_new, st.integers(min_value=1, max_value=5))
    @settings(max_examples=100, deadline=None)
    def test_extend_log_returns(self, pair, periods):
        old, new = pair
        with np.errstate(all="ignore"):
            cold = log_returns(
                np.concatenate((old, new)), periods
            )[old.size:]
            got = extend_log_returns(old, new, periods)
        assert got.tobytes() == cold.tobytes()

    @given(old_new, windows, st.sampled_from(ROLLING_STATS))
    @settings(max_examples=200, deadline=None)
    def test_extend_rolling(self, pair, window, stat):
        from repro.frame.ops import (
            rolling_mean, rolling_std, rolling_sum,
        )

        old, new = pair
        full = {"mean": rolling_mean, "std": rolling_std,
                "sum": rolling_sum, "min": rolling_min,
                "max": rolling_max}[stat](
            np.concatenate((old, new)), window
        )
        got = extend_rolling(old, new, window, stat)
        assert got.shape == (new.size,)
        if stat in ("min", "max"):
            assert np.array_equal(got, full[old.size:], equal_nan=True)
        else:
            assert got.tobytes() == full[old.size:].tobytes()

    def test_extend_rolling_rejects_unknown_stat(self):
        with pytest.raises(ValueError, match="stat"):
            extend_rolling(np.arange(5.0), np.arange(2.0), 3, "median")


def _frame(values_by_col, start=730000):
    n = len(next(iter(values_by_col.values())))
    return Frame(date_range(start, periods=n), values_by_col)


class TestExtendFeatureFrames:
    """``extend_{lag,rolling}_features`` equal their cold counterparts."""

    def _grown(self, seed=0, n=90, k=6):
        rng = np.random.default_rng(seed)
        a = rng.normal(size=n + k).cumsum()
        b = rng.normal(size=n + k)
        b[rng.integers(0, n + k, size=5)] = np.nan
        extended = _frame({"price": a, "flow": b})
        base = _frame({"price": a[:n], "flow": b[:n]})
        return base, extended, n

    def test_lag_features_bit_identical(self):
        base, extended, n = self._grown()
        cold = lag_features(extended, lags=(1, 3, 7))
        prev = lag_features(base, lags=(1, 3, 7))
        grown = extend_lag_features(prev, extended, lags=(1, 3, 7))
        assert grown.columns == cold.columns
        for name in cold.columns:
            assert grown[name].tobytes() == cold[name].tobytes()

    def test_rolling_features_bit_identical(self):
        base, extended, n = self._grown(seed=1)
        kwargs = dict(windows=(3, 14), stats=("mean", "std", "max"))
        cold = rolling_features(extended, **kwargs)
        prev = rolling_features(base, **kwargs)
        grown = extend_rolling_features(prev, extended, **kwargs)
        assert grown.columns == cold.columns
        for name in cold.columns:
            assert grown[name].tobytes() == cold[name].tobytes()

    def test_no_new_rows_returns_prev(self):
        base, _extended, _n = self._grown()
        prev = lag_features(base, lags=(1,))
        assert extend_lag_features(prev, base, lags=(1,)) is prev
