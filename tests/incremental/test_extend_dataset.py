"""Dataset-extension bit-identity: extend-by-k equals cold n+k.

The contract :mod:`repro.synth.extend` rests on — every generator array
drawn from its own named RNG substream — makes the appended rows of an
extension byte-for-byte equal to a cold generation over the longer
calendar. These tests pin that equality across every synthetic source
(each feature category), chained extensions, and the corruption
interlock (:class:`~repro.synth.extend.PrefixMismatch`).
"""

import dataclasses

import numpy as np
import pytest

from repro.frame import Frame
from repro.synth import generate_raw_dataset
from repro.synth.config import SimulationConfig
from repro.synth.extend import (
    PrefixMismatch,
    extend_raw_dataset,
    extended_config,
)


def _assert_bit_identical(extended, cold):
    """Every index ordinal and every feature column, byte for byte."""
    assert extended.config == cold.config
    assert extended.features.columns == cold.features.columns
    assert (extended.features.index.ordinals.tobytes()
            == cold.features.index.ordinals.tobytes())
    by_category = {}
    for name in cold.features.columns:
        by_category.setdefault(str(cold.categories[name]), []).append(name)
    for category, names in sorted(by_category.items()):
        for name in names:
            assert (extended.features[name].tobytes()
                    == cold.features[name].tobytes()), (
                f"column {name} ({category}) diverged from cold "
                f"generation"
            )


class TestExtendedConfig:
    def test_moves_end_by_days(self, small_config):
        longer = extended_config(small_config, 3)
        assert longer.end == "2020-01-03"
        assert longer.start == small_config.start
        assert longer.seed == small_config.seed

    def test_rejects_nonpositive_days(self, small_config):
        for days in (0, -1):
            with pytest.raises(ValueError, match="days"):
                extended_config(small_config, days)


class TestExtendBitIdentity:
    @pytest.mark.parametrize("days", [1, 7])
    def test_equals_cold_generation(self, small_config, small_raw, days):
        extended = extend_raw_dataset(small_raw, days=days)
        cold = generate_raw_dataset(extended_config(small_config, days))
        assert extended.features.n_rows == small_raw.features.n_rows + days
        _assert_bit_identical(extended, cold)

    def test_chained_extension_equals_one_shot(self, small_raw):
        chained = extend_raw_dataset(
            extend_raw_dataset(small_raw, days=2), days=3
        )
        one_shot = extend_raw_dataset(small_raw, days=5)
        _assert_bit_identical(chained, one_shot)

    def test_prefix_rows_shared_not_copied(self, small_raw):
        extended = extend_raw_dataset(small_raw, days=1)
        n = small_raw.features.n_rows
        name = small_raw.features.columns[0]
        assert np.array_equal(
            extended.features[name][:n], small_raw.features[name],
            equal_nan=True,
        )


class TestExtendInterlocks:
    def test_corrupted_dataset_refused(self, small_raw):
        name = small_raw.features.columns[3]
        columns = {
            col: small_raw.features[col] for col in small_raw.features.columns
        }
        bad = columns[name].copy()
        bad[10] += 1.0
        columns[name] = bad
        corrupted = dataclasses.replace(
            small_raw,
            features=Frame(small_raw.features.index, columns),
        )
        with pytest.raises(PrefixMismatch, match="regenerate cold"):
            extend_raw_dataset(corrupted, days=1)

    def test_rejects_nonpositive_days(self, small_raw):
        with pytest.raises(ValueError, match="days"):
            extend_raw_dataset(small_raw, days=0)

    def test_single_month_dataset_refused(self):
        config = SimulationConfig(
            start="2018-01-05", end="2018-01-25", seed=3, n_assets=105,
        )
        with pytest.raises(ValueError, match="single calendar month"):
            extend_raw_dataset(generate_raw_dataset(config), days=1)
