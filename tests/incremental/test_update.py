"""End-to-end ``update_experiment``: splice, cache re-serve, ledger chain.

The expensive fixtures run once per module: a cold experiment into a
fresh cache + ledger, a 2-day incremental update against them, and a
cold rerun of the extended configuration as the bit-identity
reference. The study period is shortened (monkeypatch) so it ends at
the parent simulation's last day — the property the ``default`` preset
has naturally — making the appended days land outside the period and
the range-granular cache keys re-serve every scenario.
"""

import dataclasses
from types import SimpleNamespace

import pytest

import repro.core.scenarios as scenarios
from repro.core.pipeline import ExperimentConfig, run_experiment
from repro.incremental import parent_fingerprint, update_experiment
from repro.obs import RunLedger, render_record
from repro.synth import generate_raw_dataset
from repro.synth.config import SimulationConfig

DAYS = 2


def _config():
    return dataclasses.replace(
        ExperimentConfig.fast(),
        simulation=SimulationConfig(start="2016-06-01", end="2017-12-31",
                                    seed=9, n_assets=105),
        periods=("2017",), windows=(7, 30),
        n_jobs=1, verbose=False,
    )


def _improvement_rows(results):
    rows = []
    for model in ("rf", "gb"):
        for imp in getattr(results, f"improvements_{model}"):
            rows.append((
                model, imp.period, imp.window, imp.diverse_mse,
                tuple(sorted(
                    (str(cat), mse) for cat, mse in imp.category_mse.items()
                )),
            ))
    return sorted(rows)


@pytest.fixture(scope="module")
def study(tmp_path_factory):
    mp = pytest.MonkeyPatch()
    mp.setitem(scenarios.PERIODS, "2017", ("2017-01-01", "2017-12-31"))
    try:
        tmp = tmp_path_factory.mktemp("incremental")
        cache = str(tmp / "cache")
        ledger = str(tmp / "runs.jsonl")
        config = _config()
        cold = run_experiment(config, cache_dir=cache, ledger_path=ledger)
        update = update_experiment(config, days=DAYS, cache_dir=cache,
                                   ledger_path=ledger)
        reference = run_experiment(update.config)
        yield SimpleNamespace(
            config=config, cache=cache, ledger=ledger,
            cold=cold, update=update, reference=reference,
        )
    finally:
        mp.undo()


class TestUpdateEndToEnd:
    def test_dataset_spliced_from_cache(self, study):
        assert study.update.dataset_reused
        assert study.update.days == DAYS

    def test_every_scenario_served_from_cache(self, study):
        assert study.update.scenarios_total == 2
        assert study.update.scenarios_cached == 2

    def test_bit_identical_to_cold_rerun(self, study):
        assert (_improvement_rows(study.update.results)
                == _improvement_rows(study.reference))

    def test_much_cheaper_than_cold(self, study):
        # Loose factor: the update reads two cached artifacts instead
        # of fitting two scenarios, so even noisy hosts clear 5x.
        assert (study.update.runtime_seconds
                < study.cold.runtime_seconds / 5)

    def test_extended_config_end_moved(self, study):
        assert study.update.config.simulation.end == "2018-01-02"

    def test_update_with_caller_dataset(self, study):
        parent = generate_raw_dataset(study.config.simulation)
        update = update_experiment(study.config, days=DAYS, raw=parent,
                                   cache_dir=study.cache)
        assert update.dataset_reused
        assert update.scenarios_cached == 2


class TestLedgerChain:
    def test_kinds(self, study):
        kinds = [r.kind for r in RunLedger(study.ledger).records()]
        assert kinds == ["run", "update"]

    def test_parent_linkage(self, study):
        records = RunLedger(study.ledger).records()
        run, update = records
        assert update.extra["parent"] == parent_fingerprint(study.config)
        assert update.extra["parent"] == run.fingerprint
        assert update.extra["parent_run_id"] == run.run_id
        assert study.update.parent_run_id == run.run_id

    def test_update_record_contents(self, study):
        record = RunLedger(study.ledger).records()[-1]
        assert record.extra["days"] == DAYS
        assert record.extra["dataset_reused"] is True
        assert record.extra["scenarios_cached"] == 2
        assert record.status == "ok"

    def test_render_shows_parent(self, study):
        record = RunLedger(study.ledger).records()[-1]
        rendered = render_record(record)
        assert "parent" in rendered
        assert record.extra["parent_run_id"] in rendered


class TestUpdateFallbacks:
    """Dataset-path decisions, with the experiment itself stubbed out."""

    @pytest.fixture()
    def stub(self, monkeypatch):
        calls = {}

        def fake_run(config, raw=None, **kwargs):
            calls["config"] = config
            calls["raw"] = raw
            return SimpleNamespace(
                run_summary=SimpleNamespace(metrics={"counters": {}}),
                artifacts={}, failures=[], runtime_seconds=0.0,
            )

        monkeypatch.setattr(
            "repro.incremental.update.run_experiment", fake_run
        )
        return calls

    def test_no_cache_no_raw_runs_cold(self, stub):
        update = update_experiment(_config(), days=1)
        assert not update.dataset_reused
        assert stub["raw"] is None

    def test_resilient_config_refuses_splice(self, stub, small_config):
        from repro.resilience import FaultPlan

        config = dataclasses.replace(
            _config(), fault_plan=FaultPlan(seed=1),
        )
        parent = generate_raw_dataset(config.simulation)
        update = update_experiment(config, days=1, raw=parent)
        assert not update.dataset_reused
        assert stub["raw"] is None

    def test_caller_dataset_spliced(self, stub):
        config = _config()
        parent = generate_raw_dataset(config.simulation)
        update = update_experiment(config, days=3, raw=parent)
        assert update.dataset_reused
        assert stub["raw"].features.n_rows == parent.features.n_rows + 3
        assert stub["config"].simulation == update.config.simulation

    def test_mismatched_caller_dataset_rejected(self, stub, small_raw):
        with pytest.raises(ValueError, match="does not match"):
            update_experiment(_config(), days=1, raw=small_raw)

    def test_rejects_nonpositive_days(self, stub):
        with pytest.raises(ValueError, match="days"):
            update_experiment(_config(), days=0)
