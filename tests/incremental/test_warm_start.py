"""Warm-start refits: member reuse is bit-identical to a cold fit.

Forests rely on prefix-stable seed spawning (the first ``R`` of ``n``
spawned seeds are the same for any ``n >= R``); boosters replay the
reused stages' RNG draws and residual updates so the continuation
stages see the exact cold generator state. Either way a warm fit at
``n`` estimators from a previous fit at ``m <= n`` must predict
byte-for-byte like a cold fit at ``n`` — through the naive and the
compiled predictors both.
"""

import numpy as np
import pytest

from repro.ml.boosting import GradientBoostingRegressor
from repro.ml.compiled import ensemble_compiled
from repro.ml.forest import RandomForestRegressor
from repro.ml.warm import fit_signature, reusable_members
from repro.obs import MetricsRegistry, use_metrics


@pytest.fixture(scope="module")
def data():
    rng = np.random.default_rng(42)
    X = rng.normal(size=(220, 12))
    y = X[:, :3] @ rng.normal(size=3) + 0.1 * rng.normal(size=220)
    return X, y


FOREST_PARAMS = dict(max_depth=6, max_features="sqrt", random_state=7)
GB_PARAMS = dict(max_depth=3, learning_rate=0.1, subsample=0.8,
                 random_state=7)


def _forest(n, **overrides):
    return RandomForestRegressor(
        n_estimators=n, **{**FOREST_PARAMS, **overrides}
    )


def _gb(n, **overrides):
    return GradientBoostingRegressor(
        n_estimators=n, **{**GB_PARAMS, **overrides}
    )


class TestFitSignature:
    def test_ignores_execution_shape_params(self, data):
        X, y = data
        a = fit_signature(_forest(4), X, y)
        b = fit_signature(_forest(16, n_jobs=4), X, y)
        assert a == b

    def test_sensitive_to_data_and_params(self, data):
        X, y = data
        base = fit_signature(_forest(4), X, y)
        assert fit_signature(_forest(4, max_depth=5), X, y) != base
        assert fit_signature(_forest(4), X, y + 1.0) != base
        assert fit_signature(_gb(4), X, y) != base


class TestReusableMembers:
    def test_prefix_returned_on_match(self, data):
        X, y = data
        prev = _forest(6).fit(X, y)
        grown = _forest(10)
        sig = fit_signature(grown, X, y)
        members = reusable_members(grown, prev, sig)
        assert members == prev.estimators_[:6]

    def test_shrink_takes_prefix(self, data):
        X, y = data
        prev = _forest(6).fit(X, y)
        shrunk = _forest(3)
        members = reusable_members(
            shrunk, prev, fit_signature(shrunk, X, y)
        )
        assert members == prev.estimators_[:3]

    def test_none_without_previous(self, data):
        X, y = data
        est = _forest(4)
        assert reusable_members(est, None, fit_signature(est, X, y)) is None

    def test_counts_misses(self, data):
        X, y = data
        prev = _forest(4).fit(X, y)
        registry = MetricsRegistry()
        with use_metrics(registry):
            got = reusable_members(
                _forest(4), prev, fit_signature(_forest(4), X, y + 1.0)
            )
        assert got is None
        assert registry.snapshot()["counters"]["ml.warm_misses"] == 1


@pytest.mark.parametrize("splitter", ["exact", "hist"])
class TestForestWarmStart:
    def test_grow_bit_identical_to_cold(self, data, splitter):
        X, y = data
        prev = _forest(5, splitter=splitter).fit(X, y)
        warm = _forest(12, splitter=splitter).fit(X, y, warm_start_from=prev)
        cold = _forest(12, splitter=splitter).fit(X, y)
        assert warm.predict(X).tobytes() == cold.predict(X).tobytes()
        # The first five members are the previous objects, not refits.
        assert warm.estimators_[:5] == prev.estimators_[:5]

    def test_mismatched_previous_falls_back_cold(self, data, splitter):
        X, y = data
        prev = _forest(5, splitter=splitter, max_depth=4).fit(X, y)
        warm = _forest(8, splitter=splitter).fit(X, y, warm_start_from=prev)
        cold = _forest(8, splitter=splitter).fit(X, y)
        assert warm.predict(X).tobytes() == cold.predict(X).tobytes()
        assert not any(t in prev.estimators_ for t in warm.estimators_)


class TestBoostingWarmStart:
    def test_grow_bit_identical_to_cold(self, data):
        X, y = data
        prev = _gb(4).fit(X, y)
        warm = _gb(10).fit(X, y, warm_start_from=prev)
        cold = _gb(10).fit(X, y)
        assert warm.predict(X).tobytes() == cold.predict(X).tobytes()
        assert warm.train_losses_ == cold.train_losses_
        assert warm.estimators_[:4] == prev.estimators_[:4]

    def test_full_subsample_grow(self, data):
        X, y = data
        prev = _gb(3, subsample=1.0).fit(X, y)
        warm = _gb(7, subsample=1.0).fit(X, y, warm_start_from=prev)
        cold = _gb(7, subsample=1.0).fit(X, y)
        assert warm.predict(X).tobytes() == cold.predict(X).tobytes()

    def test_hist_splitter_grow(self, data):
        X, y = data
        prev = _gb(4, splitter="hist").fit(X, y)
        warm = _gb(9, splitter="hist").fit(X, y, warm_start_from=prev)
        cold = _gb(9, splitter="hist").fit(X, y)
        assert warm.predict(X).tobytes() == cold.predict(X).tobytes()


class TestCompiledExtension:
    def test_warm_compile_extends_previous_tables(self, data):
        X, y = data
        prev = _forest(5).fit(X, y)
        prev_compiled = ensemble_compiled(prev)
        registry = MetricsRegistry()
        with use_metrics(registry):
            warm = _forest(12).fit(X, y, warm_start_from=prev)
            warm_compiled = ensemble_compiled(warm)
        counters = registry.snapshot()["counters"]
        assert counters["predict.compile_reused_nodes"] == \
            prev_compiled.n_nodes
        cold_compiled = ensemble_compiled(_forest(12).fit(X, y))
        assert (warm_compiled.predict(X).tobytes()
                == cold_compiled.predict(X).tobytes())
        assert warm_compiled.n_trees == 12

    def test_full_reuse_returns_previous_compiled(self, data):
        X, y = data
        prev = _forest(6).fit(X, y)
        prev_compiled = ensemble_compiled(prev)
        warm = _forest(6).fit(X, y, warm_start_from=prev)
        assert ensemble_compiled(warm) is prev_compiled

    def test_cold_fit_resets_compiled_cache(self, data):
        X, y = data
        est = _forest(4)
        est.fit(X, y)
        first = ensemble_compiled(est)
        est.fit(X, y + 1.0)
        assert ensemble_compiled(est) is not first
