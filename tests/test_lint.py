"""The no-bare-print lint covers the whole library, cache included.

``tools/check_no_print.py`` walks its roots recursively, so new
packages are covered the moment they land — these tests pin that
contract (a planted offender under a nested package is found, and the
real tree is currently clean) so a layout change can't silently drop
worker-side code such as ``repro.cache`` from the lint.
"""

import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
TOOL = REPO / "tools" / "check_no_print.py"


def _run(*roots, cwd=REPO):
    return subprocess.run(
        [sys.executable, str(TOOL), *map(str, roots)],
        cwd=cwd, capture_output=True, text=True,
    )


class TestCheckNoPrint:
    def test_library_tree_is_clean(self):
        result = _run("src/repro", "src/repro/cache", "src/repro/ml",
                      "src/repro/obs", "src/repro/parallel",
                      "src/repro/resilience")
        assert result.returncode == 0, result.stderr

    def test_cache_package_is_inside_the_scanned_tree(self):
        scanned = {
            path.relative_to(REPO / "src" / "repro").as_posix()
            for path in (REPO / "src" / "repro").rglob("*.py")
        }
        assert "cache/store.py" in scanned
        assert "cache/fit.py" in scanned
        assert "cache/compiled.py" in scanned
        assert "ml/compiled.py" in scanned

    def test_obs_modules_are_inside_the_scanned_tree(self):
        # The ledger/profile/export/bench modules return strings for
        # the CLI to print — they must never print themselves.
        scanned = {
            path.relative_to(REPO / "src" / "repro").as_posix()
            for path in (REPO / "src" / "repro").rglob("*.py")
        }
        assert "obs/ledger.py" in scanned
        assert "obs/profile.py" in scanned
        assert "obs/export.py" in scanned
        assert "obs/bench.py" in scanned

    def test_supervision_modules_are_inside_the_scanned_tree(self):
        # Worker supervision and the artifact codec log through
        # repro.obs — a stray print in a worker process would interleave
        # with real output nondeterministically.
        scanned = {
            path.relative_to(REPO / "src" / "repro").as_posix()
            for path in (REPO / "src" / "repro").rglob("*.py")
        }
        assert "parallel/supervision.py" in scanned
        assert "cache/codec.py" in scanned

    def test_planted_offender_in_nested_package_is_caught(self, tmp_path):
        nested = tmp_path / "lib" / "cache"
        nested.mkdir(parents=True)
        (nested / "store.py").write_text('print("leak")\n')
        result = _run(tmp_path / "lib")
        assert result.returncode == 1
        assert "store.py:1" in result.stderr

    def test_docstring_print_does_not_trip(self, tmp_path):
        root = tmp_path / "lib"
        root.mkdir()
        (root / "mod.py").write_text('"""Docs mention print(x)."""\n')
        result = _run(root)
        assert result.returncode == 0, result.stderr
