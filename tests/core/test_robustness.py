"""Tests for FRA stability analysis."""

import numpy as np
import pytest

from repro.core.fra import FRAConfig
from repro.core.robustness import StabilityReport, fra_stability, jaccard

TINY = FRAConfig(
    target_size=5,
    rf_params={"n_estimators": 4, "max_depth": 4, "max_features": "sqrt"},
    gb_params={"n_estimators": 6, "max_depth": 2, "learning_rate": 0.25},
    pfi_repeats=1,
    pfi_max_rows=100,
)


@pytest.fixture(scope="module")
def problem():
    rng = np.random.default_rng(30)
    n = 300
    X = rng.normal(size=(n, 15))
    y = 5 * X[:, 0] + 4 * X[:, 1] - 3 * X[:, 2] + 0.2 * rng.normal(size=n)
    names = [f"f{i:02d}" for i in range(15)]
    return X, y, names


class TestJaccard:
    def test_identical_sets(self):
        assert jaccard({"a", "b"}, {"a", "b"}) == 1.0

    def test_disjoint_sets(self):
        assert jaccard({"a"}, {"b"}) == 0.0

    def test_partial_overlap(self):
        assert jaccard({"a", "b", "c"}, {"b", "c", "d"}) == pytest.approx(
            2 / 4
        )

    def test_empty_sets(self):
        assert jaccard(set(), set()) == 1.0
        assert jaccard({"a"}, set()) == 0.0

    def test_accepts_lists(self):
        assert jaccard(["a", "a", "b"], ["b", "a"]) == 1.0


class TestStability:
    @pytest.fixture(scope="class")
    def report(self, problem):
        X, y, names = problem
        return fra_stability(X, y, names, TINY, n_seeds=3)

    def test_report_shape(self, report, problem):
        _, _, names = problem
        assert isinstance(report, StabilityReport)
        assert report.n_runs == 3
        assert set(report.selection_frequency) == set(names)
        assert 0.0 <= report.mean_jaccard <= 1.0
        assert report.mean_size <= TINY.target_size

    def test_informative_features_in_stable_core(self, report):
        core = report.core_features(threshold=1.0)
        assert {"f00", "f01", "f02"} <= set(core)

    def test_frequencies_are_valid_fractions(self, report):
        for freq in report.selection_frequency.values():
            assert freq in (0.0, 1 / 3, 2 / 3, 1.0)

    def test_strong_signal_gives_high_jaccard(self, report):
        """With three dominant features out of 15, selections must agree
        substantially across seeds."""
        assert report.mean_jaccard > 0.4

    def test_core_sorted_by_frequency(self, report):
        core = report.core_features(threshold=0.3)
        freqs = [report.selection_frequency[name] for name in core]
        assert freqs == sorted(freqs, reverse=True)

    def test_unstable_disjoint_from_core(self, report):
        core = set(report.core_features(0.8))
        unstable = set(report.unstable_features(0.2, 0.8))
        assert not core & unstable

    def test_validation(self, problem):
        X, y, names = problem
        with pytest.raises(ValueError):
            fra_stability(X, y, names, TINY, n_seeds=1)
        with pytest.raises(ValueError):
            StabilityReport(n_runs=2).core_features(threshold=0.0)
