"""Property-based tests (hypothesis) for core-layer invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.cleaning import clean_features
from repro.core.crypto100 import crypto100_from_caps, tracking_distance
from repro.core.horizons import HorizonGroup, merge_group, unique_features
from repro.core.improvement import ScenarioImprovement
from repro.categories import DataCategory
from repro.frame import Frame, date_range


@st.composite
def noisy_frame(draw):
    """A frame with a random mix of clean/gappy/flat/duplicate columns."""
    seed = draw(st.integers(min_value=0, max_value=2**32 - 1))
    n_rows = draw(st.integers(min_value=10, max_value=60))
    n_cols = draw(st.integers(min_value=1, max_value=8))
    rng = np.random.default_rng(seed)
    idx = date_range("2019-01-01", periods=n_rows)
    cols = {}
    for j in range(n_cols):
        kind = rng.integers(0, 4)
        base = rng.normal(size=n_rows).cumsum()
        if kind == 1 and n_rows > 4:  # gap
            start = rng.integers(1, n_rows - 2)
            length = rng.integers(1, n_rows - start)
            base[start:start + length] = np.nan
        elif kind == 2:  # flat stretch
            start = rng.integers(0, n_rows // 2)
            base[start:start + n_rows // 2] = 1.0
        elif kind == 3 and cols:  # duplicate of an earlier column
            base = next(iter(cols.values())).copy()
        cols[f"c{j}"] = base
    return Frame(idx, cols)


class TestCleaningProperties:
    @settings(max_examples=60, deadline=None)
    @given(noisy_frame())
    def test_output_subset_of_input(self, frame):
        cleaned, report = clean_features(frame)
        assert set(cleaned.columns) <= set(frame.columns)
        assert cleaned.n_rows == frame.n_rows

    @settings(max_examples=60, deadline=None)
    @given(noisy_frame())
    def test_dropped_plus_kept_partitions_input(self, frame):
        cleaned, report = clean_features(frame)
        dropped = (
            set(report.started_late)
            | set(report.too_many_missing)
            | set(report.too_flat)
            | set(report.duplicates)
        )
        assert dropped | set(cleaned.columns) == set(frame.columns)
        assert not dropped & set(cleaned.columns)
        assert report.n_dropped == len(dropped)

    @settings(max_examples=60, deadline=None)
    @given(noisy_frame())
    def test_idempotent(self, frame):
        once, _ = clean_features(frame)
        twice, report2 = clean_features(once)
        assert twice == once
        assert report2.n_dropped == 0

    @settings(max_examples=60, deadline=None)
    @given(noisy_frame())
    def test_no_interior_nans_survive(self, frame):
        cleaned, _ = clean_features(frame)
        for name in cleaned.columns:
            assert not np.isnan(cleaned[name]).any()


class TestCrypto100Properties:
    @settings(max_examples=60, deadline=None)
    @given(st.integers(min_value=0, max_value=2**32 - 1),
           st.integers(min_value=5, max_value=9))
    def test_index_positive_and_finite(self, seed, power):
        rng = np.random.default_rng(seed)
        caps = np.exp(rng.uniform(23, 30, size=50))  # $10B .. $10T
        index = crypto100_from_caps(caps, power)
        assert np.isfinite(index).all()
        assert (index > 0).all()

    @settings(max_examples=60, deadline=None)
    @given(st.integers(min_value=0, max_value=2**32 - 1))
    def test_tracking_distance_triangle_like(self, seed):
        """distance(a, c) <= distance(a, b) + distance(b, c)."""
        rng = np.random.default_rng(seed)
        a, b, c = np.exp(rng.uniform(1, 10, size=(3, 20)))
        assert tracking_distance(a, c) <= (
            tracking_distance(a, b) + tracking_distance(b, c) + 1e-9
        )

    @settings(max_examples=60, deadline=None)
    @given(st.integers(min_value=0, max_value=2**32 - 1),
           st.floats(min_value=0.1, max_value=10.0))
    def test_tracking_distance_scale_law(self, seed, factor):
        """Scaling one series by k shifts distance by <= |log10 k|."""
        rng = np.random.default_rng(seed)
        a = np.exp(rng.uniform(1, 10, size=20))
        b = np.exp(rng.uniform(1, 10, size=20))
        base = tracking_distance(a, b)
        scaled = tracking_distance(a * factor, b)
        assert abs(scaled - base) <= abs(np.log10(factor)) + 1e-9


@st.composite
def importance_maps(draw):
    n = draw(st.integers(min_value=0, max_value=12))
    names = [f"f{i}" for i in range(n)]
    values = draw(st.lists(
        st.floats(min_value=0, max_value=1, allow_nan=False),
        min_size=n, max_size=n,
    ))
    return dict(zip(names, values))


class TestHorizonProperties:
    @settings(max_examples=60, deadline=None)
    @given(importance_maps(), importance_maps())
    def test_merge_bounds(self, a, b):
        """Merged importances are within [min, max] of the inputs."""
        if not a and not b:
            return
        group = merge_group("g", [a, b])
        for feature, value in group.importances.items():
            sources = [m[feature] for m in (a, b) if feature in m]
            assert min(sources) - 1e-12 <= value <= max(sources) + 1e-12

    @settings(max_examples=60, deadline=None)
    @given(importance_maps(), importance_maps())
    def test_unique_features_disjoint(self, a, b):
        if not a and not b:
            return
        ga, gb = HorizonGroup("a", a), HorizonGroup("b", b)
        ua = unique_features(ga, gb, 50) if a else []
        ub = unique_features(gb, ga, 50) if b else []
        assert not set(ua) & set(b)
        assert not set(ub) & set(a)
        assert not set(ua) & set(ub)


class TestImprovementProperties:
    @settings(max_examples=60, deadline=None)
    @given(st.floats(min_value=1e-6, max_value=1e6),
           st.lists(st.floats(min_value=1e-6, max_value=1e6),
                    min_size=1, max_size=6))
    def test_mean_improvement_bounds(self, diverse_mse, category_mses):
        cats = list(DataCategory)[:len(category_mses)]
        res = ScenarioImprovement(
            "2017", 7, diverse_mse, dict(zip(cats, category_mses))
        )
        improvements = res.improvements()
        mean = res.mean_improvement()
        lo, hi = min(improvements.values()), max(improvements.values())
        # Tolerance must scale with magnitude: np.mean rounds within a
        # few ulps, which exceeds any absolute epsilon once the
        # improvement percentages reach ~1e7.
        tol = 1e-9 * max(1.0, abs(lo), abs(hi))
        assert lo - tol <= mean <= hi + tol

    @settings(max_examples=60, deadline=None)
    @given(st.floats(min_value=1e-3, max_value=1e3))
    def test_equal_mse_zero_improvement(self, mse):
        res = ScenarioImprovement(
            "2019", 30, mse, {DataCategory.MACRO: mse}
        )
        assert res.mean_improvement() == pytest.approx(0.0, abs=1e-9)
