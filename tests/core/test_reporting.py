"""Unit tests for the table renderers."""

from repro.categories import DataCategory
from repro.core.reporting import (
    format_table,
    render_contributions,
    render_improvement_by_category,
    render_improvement_by_window,
    render_series,
    render_table1,
    render_top_features,
    render_unique_features,
)


class TestFormatTable:
    def test_alignment(self):
        out = format_table(["a", "bbb"], [["1", "2"], ["333", "4"]])
        lines = out.splitlines()
        assert len(lines) == 4
        assert all(len(line) == len(lines[0]) for line in lines[1:])

    def test_title(self):
        out = format_table(["x"], [["1"]], title="My Table")
        assert out.splitlines()[0] == "My Table"

    def test_non_string_cells(self):
        out = format_table(["n"], [[42], [3.5]])
        assert "42" in out and "3.5" in out


class TestRenderers:
    def test_table1(self):
        out = render_table1({"2017_1": 79, "2019_180": 90})
        assert "2017_1" in out and "79" in out
        assert "Table 1" in out

    def test_contributions_label_and_values(self):
        per_window = {
            7: {DataCategory.TECHNICAL: 0.5},
            90: {DataCategory.TECHNICAL: 0.25,
                 DataCategory.MACRO: 0.125},
        }
        out = render_contributions(per_window, "2017")
        assert "Figure 3" in out
        assert "Technical Indicators" in out
        assert "0.500" in out and "0.250" in out
        assert "Macroeconomic Indicators" in out
        # macro absent at w=7 renders as 0.000
        assert "0.000" in out

    def test_contributions_figure4_for_2019(self):
        out = render_contributions({7: {}}, "2019")
        assert "Figure 4" in out

    def test_top_features_uneven_columns(self):
        out = render_top_features(
            {"Short-term": ["a", "b", "c"], "Long-term": ["x"]}, "2017"
        )
        assert "Table 3" in out
        assert out.count("\n") >= 4

    def test_unique_features(self):
        out = render_unique_features(
            {"Short-term": ["s1"], "Long-term": ["l1", "l2"]}, "2019"
        )
        assert "Table 4" in out and "l2" in out

    def test_improvement_by_window(self):
        out = render_improvement_by_window(
            {"2017": {1: 855.87, 7: 189.08}, "2019": {1: 794.71}}
        )
        assert "855.87%" in out
        assert "-" in out  # missing cell for 2019 w=7

    def test_improvement_by_category(self):
        out = render_improvement_by_category(
            {"2017": {DataCategory.ONCHAIN_BTC: 12.09},
             "2019": {DataCategory.ONCHAIN_BTC: 17.51,
                      DataCategory.ONCHAIN_USDC: 378.52}}
        )
        assert "12.09%" in out and "378.52%" in out
        assert "On-chain Metrics (USDC)" in out

    def test_series(self):
        out = render_series("crypto100", [1.0, 2.0, 3.0, 4.0])
        assert "n=4" in out and "first=1" in out and "last=4" in out

    def test_series_empty(self):
        assert "(empty)" in render_series("x", [])
