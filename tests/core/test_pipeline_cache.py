"""Pipeline-level artifact caching and splitter propagation.

The expensive assertions share three module-scoped runs of a trimmed
one-scenario experiment: uncached, cold-cache and warm-cache. The
headline contract is that all three are bit-identical — the cache may
only change *when* work happens, never its result.
"""

import dataclasses

import pytest

from repro.cache import CacheStore
from repro.core.pipeline import (
    ExperimentConfig,
    _apply_splitter,
    run_experiment,
)


@pytest.fixture(scope="module")
def mini_config():
    config = ExperimentConfig.fast()
    return dataclasses.replace(
        config,
        simulation=dataclasses.replace(config.simulation,
                                       end="2019-12-31"),
        periods=("2017",),
        windows=(7,),
        run_gb_validation=False,
        n_jobs=1,
    )


@pytest.fixture(scope="module")
def cache_dir(tmp_path_factory):
    return tmp_path_factory.mktemp("artifact-cache")


@pytest.fixture(scope="module")
def uncached(mini_config):
    return run_experiment(mini_config)


@pytest.fixture(scope="module")
def cold(mini_config, cache_dir):
    return run_experiment(mini_config, cache_dir=str(cache_dir))


@pytest.fixture(scope="module")
def warm(mini_config, cache_dir, cold):
    return run_experiment(mini_config, cache_dir=str(cache_dir))


def _signature(results):
    """Everything the paper's tables read, hashably."""
    out = {}
    for key, art in results.artifacts.items():
        out[key] = (
            tuple(art.selection.final_features),
            art.selection.overlap_top100,
            tuple(sorted(art.rf_importance.items())),
        )
    out["improvements"] = tuple(
        (imp.period, imp.window, imp.diverse_mse,
         tuple(sorted((c.value, m) for c, m in imp.category_mse.items())))
        for imp in results.improvements_rf
    )
    return out


class TestCachedRunEquivalence:
    def test_cold_equals_uncached(self, uncached, cold):
        assert _signature(cold) == _signature(uncached)

    def test_warm_equals_uncached(self, uncached, warm):
        assert _signature(warm) == _signature(uncached)

    def test_cold_run_populates_the_store(self, cold, cache_dir):
        counters = cold.run_summary.metrics["counters"]
        assert counters["cache.writes"] > 0
        assert counters["cache.misses"] > 0
        assert "cache.hits" not in counters
        assert CacheStore(cache_dir).entry_count() > 0

    def test_warm_run_serves_scenarios_from_cache(self, warm):
        counters = warm.run_summary.metrics["counters"]
        assert counters["experiment.scenarios_cached"] == 1
        assert counters["cache.hits"] >= 3  # dataset + scenarios + task
        assert "cache.writes" not in counters

    def test_config_change_invalidates_tasks_not_inputs(
            self, mini_config, cache_dir, warm):
        # A different top_k must re-run the scenario task, but the
        # dataset, the scenario frames and the single-model fits keep
        # hitting — layered keys invalidate only what actually changed.
        changed = dataclasses.replace(mini_config, top_k=25)
        results = run_experiment(changed, cache_dir=str(cache_dir))
        counters = results.run_summary.metrics["counters"]
        assert "experiment.scenarios_cached" not in counters
        assert counters["cache.hits"] >= 4  # inputs + model-fit artifacts
        assert counters["cache.writes"] > 0  # the new task result


class TestSplitterConfig:
    def test_invalid_splitter_rejected(self, mini_config):
        bad = dataclasses.replace(mini_config, splitter="gpu")
        with pytest.raises(ValueError, match="splitter"):
            run_experiment(bad)

    def test_exact_passes_through_unchanged(self, mini_config):
        assert _apply_splitter(mini_config) is mini_config

    def test_hist_lands_in_every_stage(self, mini_config):
        config = _apply_splitter(
            dataclasses.replace(mini_config, splitter="hist")
        )
        assert config.fra.rf_params["splitter"] == "hist"
        assert config.fra.gb_params["splitter"] == "hist"
        assert config.shap.gb_params["splitter"] == "hist"
        assert config.rf_importance_params["splitter"] == "hist"
        assert config.improvement_rf.param_grid["splitter"] == ["hist"]
        assert config.improvement_gb.param_grid["splitter"] == ["hist"]

    def test_explicit_pin_wins(self, mini_config):
        pinned = dataclasses.replace(
            mini_config,
            splitter="hist",
            rf_importance_params={**mini_config.rf_importance_params,
                                  "splitter": "exact"},
        )
        config = _apply_splitter(pinned)
        assert config.rf_importance_params["splitter"] == "exact"
        assert config.fra.rf_params["splitter"] == "hist"

    def test_idempotent(self, mini_config):
        once = _apply_splitter(
            dataclasses.replace(mini_config, splitter="hist")
        )
        assert _apply_splitter(once) == once

    def test_non_tree_families_untouched(self):
        config = dataclasses.replace(
            ExperimentConfig.fast(),
            splitter="hist",
            improvement_rf=dataclasses.replace(
                ExperimentConfig.fast().improvement_rf, model="mlp",
                param_grid=None,
            ),
        )
        applied = _apply_splitter(config)
        assert applied.improvement_rf.param_grid is None
