"""Unit tests for repro.core.cleaning."""

import numpy as np
import pytest

from repro.core.cleaning import clean_features
from repro.frame import Frame, date_range

NAN = np.nan


def make_frame(**cols):
    n = len(next(iter(cols.values())))
    return Frame(date_range("2019-01-01", periods=n), cols)


class TestLateStart:
    def test_leading_nan_dropped(self):
        f = make_frame(
            late=[NAN, NAN, 1.0, 2.0, 3.0],
            good=[1.0, 2.0, 3.0, 4.0, 5.0],
        )
        cleaned, report = clean_features(f)
        assert cleaned.columns == ["good"]
        assert report.started_late == ["late"]

    def test_keep_late_start_when_disabled(self):
        f = make_frame(late=[NAN, 1.0, 2.0, 3.0, 4.0])
        cleaned, report = clean_features(
            f, drop_late_start=False, max_nan_run_frac=0.5
        )
        assert "late" in cleaned.columns
        assert report.started_late == []
        # the leading NaN is not interpolated (no left anchor)
        assert np.isnan(cleaned["late"][0])


class TestMissingRuns:
    def test_long_gap_dropped(self):
        n = 100
        gappy = np.arange(float(n))
        gappy[10:30] = NAN  # 20 % gap > 5 % threshold
        f = make_frame(gappy=gappy, good=np.arange(float(n)) * 2)
        cleaned, report = clean_features(f)
        assert report.too_many_missing == ["gappy"]
        assert cleaned.columns == ["good"]

    def test_short_gap_interpolated(self):
        n = 100
        col = np.arange(float(n))
        col[50:52] = NAN
        cleaned, report = clean_features(make_frame(col=col))
        assert report.n_dropped == 0
        assert not np.isnan(cleaned["col"]).any()
        assert cleaned["col"][50] == pytest.approx(50.0)

    def test_threshold_is_relative_to_length(self):
        n = 40
        col = np.arange(float(n))
        col[10:13] = NAN  # 3/40 = 7.5 % > 5 %
        _, report = clean_features(make_frame(col=col))
        assert report.too_many_missing == ["col"]
        _, report2 = clean_features(
            make_frame(col=col), max_nan_run_frac=0.10
        )
        assert report2.too_many_missing == []


class TestFlatRuns:
    def test_long_flat_dropped(self):
        n = 100
        flat = np.arange(float(n))
        flat[20:60] = 7.0  # 40 % constant
        f = make_frame(flat=flat, good=np.arange(float(n)) * 3)
        cleaned, report = clean_features(f)
        assert report.too_flat == ["flat"]
        assert "good" in cleaned.columns

    def test_fully_constant_dropped(self):
        f = make_frame(const=np.full(50, 3.0))
        cleaned, report = clean_features(f)
        assert report.too_flat == ["const"]
        assert cleaned.n_cols == 0

    def test_short_plateau_kept(self):
        n = 100
        col = np.arange(float(n))
        col[10:20] = 10.0  # 10 % plateau < 25 %
        _, report = clean_features(make_frame(col=col))
        assert report.too_flat == []


class TestDuplicates:
    def test_exact_duplicate_dropped(self):
        base = np.arange(50.0)
        f = make_frame(a=base, b=base.copy(), c=base * 2)
        cleaned, report = clean_features(f)
        assert cleaned.columns == ["a", "c"]
        assert report.duplicates == {"b": "a"}

    def test_duplicate_after_interpolation(self):
        base = np.arange(50.0)
        with_gap = base.copy()
        with_gap[25] = NAN  # interpolates back to the same line
        f = make_frame(a=base, b=with_gap)
        cleaned, report = clean_features(f)
        assert report.duplicates == {"b": "a"}


class TestReportAndValidation:
    def test_summary_counts(self):
        n = 100
        f = make_frame(
            late=np.concatenate(([NAN], np.arange(float(n - 1)))),
            flat=np.full(n, 1.0),
            good=np.arange(float(n)),
            dup=np.arange(float(n)),
        )
        cleaned, report = clean_features(f)
        assert report.n_dropped == 3
        assert "late-start 1" in report.summary()
        assert cleaned.columns == ["good"]

    def test_empty_frame(self):
        f = Frame.empty(date_range("2019-01-01", periods=0))
        cleaned, report = clean_features(f)
        assert cleaned.n_cols == 0
        assert report.n_dropped == 0

    def test_invalid_fracs(self):
        f = make_frame(a=[1.0, 2.0])
        with pytest.raises(ValueError):
            clean_features(f, max_nan_run_frac=1.5)
        with pytest.raises(ValueError):
            clean_features(f, max_flat_run_frac=-0.1)

    def test_column_order_preserved(self):
        f = make_frame(
            z=np.arange(30.0), a=np.arange(30.0) * 2, m=np.arange(30.0) * 3
        )
        cleaned, _ = clean_features(f)
        assert cleaned.columns == ["z", "a", "m"]
