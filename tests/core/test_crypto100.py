"""Unit tests for repro.core.crypto100."""

import numpy as np
import pytest

from repro.core.crypto100 import (
    crypto100_from_caps,
    crypto100_index,
    scaling_factor_sweep,
    tracking_distance,
    tune_scaling_power,
)


class TestFormula:
    def test_matches_manual_computation(self):
        caps = np.array([1e11, 2e11, 5e11])
        index = crypto100_from_caps(caps, power=7)
        expected = caps / np.log10(caps) ** 7
        assert np.allclose(index, expected)

    def test_monotone_in_cap(self):
        """Over realistic cap ranges the index grows with total cap."""
        caps = np.linspace(1e10, 1e13, 50)
        index = crypto100_from_caps(caps)
        assert np.all(np.diff(index) > 0)

    def test_higher_power_shrinks_index(self):
        caps = np.array([5e11])
        assert crypto100_from_caps(caps, 8) < crypto100_from_caps(caps, 7)
        assert crypto100_from_caps(caps, 7) < crypto100_from_caps(caps, 6)

    def test_nonpositive_caps_rejected(self):
        with pytest.raises(ValueError):
            crypto100_from_caps(np.array([1e11, 0.0]))


class TestIndexFrame:
    def test_columns_and_consistency(self, raw):
        frame = crypto100_index(raw.universe)
        assert set(frame.columns) == {
            "crypto100", "top100_cap", "total_cap"
        }
        assert (frame["top100_cap"] <= frame["total_cap"] + 1e-6).all()
        recon = crypto100_from_caps(frame["top100_cap"])
        assert np.allclose(recon, frame["crypto100"])

    def test_comparable_to_btc(self, raw):
        """Power 7 keeps the index within ~1 order of magnitude of BTC."""
        frame = crypto100_index(raw.universe)
        btc = raw.universe.btc["close"]
        ratio = np.log10(frame["crypto100"] / btc)
        assert np.abs(ratio).mean() < 1.0

    def test_tracks_market(self, raw):
        frame = crypto100_index(raw.universe)
        corr = np.corrcoef(
            frame["crypto100"], raw.universe.btc["market_cap"]
        )[0, 1]
        assert corr > 0.9


class TestTrackingDistance:
    def test_identical_series_zero(self):
        series = np.array([10.0, 20.0, 30.0])
        assert tracking_distance(series, series) == 0.0

    def test_order_of_magnitude_is_one(self):
        a = np.array([10.0, 100.0])
        assert tracking_distance(a, a * 10) == pytest.approx(1.0)

    def test_symmetric(self):
        a = np.array([10.0, 20.0])
        b = np.array([15.0, 25.0])
        assert tracking_distance(a, b) == pytest.approx(
            tracking_distance(b, a)
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            tracking_distance(np.array([1.0]), np.array([1.0, 2.0]))
        with pytest.raises(ValueError):
            tracking_distance(np.array([]), np.array([]))
        with pytest.raises(ValueError):
            tracking_distance(np.array([-1.0]), np.array([1.0]))


class TestScalingSweep:
    def test_sweep_keys(self, raw):
        sweep = scaling_factor_sweep(raw.universe, powers=(6, 7, 8))
        assert set(sweep) == {6, 7, 8}

    def test_sweep_ordering(self, raw):
        """Figure 2's message: lower powers blow the index far above BTC."""
        sweep = scaling_factor_sweep(raw.universe, powers=(6, 7, 8))
        assert (sweep[6] > sweep[7]).all()
        assert (sweep[7] > sweep[8]).all()

    def test_tuning_picks_seven(self, raw):
        """The paper's chosen power must win on the simulated universe."""
        best, distances = tune_scaling_power(raw.universe)
        assert best == 7
        assert distances[7] < distances[6]
        assert distances[7] < distances[8]
