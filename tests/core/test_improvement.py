"""Unit tests for the diversity improvement study."""

import numpy as np
import pytest

from repro.categories import DataCategory
from repro.core.improvement import (
    ImprovementConfig,
    ScenarioImprovement,
    average_by_category,
    average_by_window,
    evaluate_feature_set,
    overall_average,
)

FAST = ImprovementConfig(
    model="rf",
    param_grid={"n_estimators": [5], "max_depth": [8],
                "max_features": ["sqrt"]},
    cv_folds=3,
)


class TestEvaluateFeatureSet:
    def test_returns_positive_mse(self, scenario_2017_7):
        mse = evaluate_feature_set(
            scenario_2017_7, scenario_2017_7.feature_names[:10], FAST
        )
        assert mse > 0

    def test_more_informative_features_help(self, scenario_2017_7):
        """Level-tracking technical features must beat macro-only ones
        at a 7-day horizon (macro series are coarse and lagged)."""
        sc = scenario_2017_7
        technical = sc.columns_in(DataCategory.TECHNICAL)
        macro = sc.columns_in(DataCategory.MACRO)
        assert technical and macro
        mse_good = evaluate_feature_set(sc, technical, FAST)
        mse_weak = evaluate_feature_set(sc, macro, FAST)
        assert mse_good < mse_weak

    def test_empty_set_rejected(self, scenario_2017_7):
        with pytest.raises(ValueError):
            evaluate_feature_set(scenario_2017_7, [], FAST)

    def test_holdout_mode(self, scenario_2017_7):
        cfg = ImprovementConfig(
            model="rf",
            param_grid={"n_estimators": [5], "max_depth": [8],
                        "max_features": ["sqrt"]},
            cv_folds=3, evaluation="holdout",
        )
        mse = evaluate_feature_set(
            scenario_2017_7, scenario_2017_7.feature_names[:10], cfg
        )
        assert mse > 0

    def test_walkforward_mode_stricter_than_cv(self, scenario_2017_7):
        grid = {"n_estimators": [5], "max_depth": [8],
                "max_features": ["sqrt"]}
        names = scenario_2017_7.feature_names[:10]
        mse_cv = evaluate_feature_set(
            scenario_2017_7, names,
            ImprovementConfig(model="rf", param_grid=grid, cv_folds=3),
        )
        mse_wf = evaluate_feature_set(
            scenario_2017_7, names,
            ImprovementConfig(model="rf", param_grid=grid, cv_folds=3,
                              evaluation="walkforward"),
        )
        # rolling-origin cannot interpolate future levels: strictly harder
        assert mse_wf > mse_cv

    def test_unknown_mode_rejected(self, scenario_2017_7):
        cfg = ImprovementConfig(
            model="rf",
            param_grid={"n_estimators": [5], "max_depth": [8],
                        "max_features": ["sqrt"]},
            cv_folds=3, evaluation="oracle",
        )
        with pytest.raises(ValueError):
            evaluate_feature_set(
                scenario_2017_7, scenario_2017_7.feature_names[:5], cfg
            )


class TestScenarioImprovement:
    def test_improvements_formula(self):
        res = ScenarioImprovement(
            period="2017", window=7, diverse_mse=2.0,
            category_mse={
                DataCategory.MACRO: 20.0,
                DataCategory.TECHNICAL: 4.0,
            },
        )
        imp = res.improvements()
        assert imp[DataCategory.MACRO] == pytest.approx(900.0)
        assert imp[DataCategory.TECHNICAL] == pytest.approx(100.0)
        assert res.mean_improvement() == pytest.approx(500.0)

    def test_mean_improvement_empty_rejected(self):
        res = ScenarioImprovement(period="2017", window=7, diverse_mse=1.0)
        with pytest.raises(ValueError):
            res.mean_improvement()


class TestAggregations:
    @pytest.fixture
    def fake_results(self):
        return [
            ScenarioImprovement(
                "2017", 7, 1.0,
                {DataCategory.MACRO: 3.0, DataCategory.TECHNICAL: 2.0},
            ),
            ScenarioImprovement(
                "2017", 90, 1.0,
                {DataCategory.MACRO: 5.0, DataCategory.TECHNICAL: 1.0},
            ),
            ScenarioImprovement(
                "2019", 7, 1.0, {DataCategory.MACRO: 2.0},
            ),
        ]

    def test_average_by_window(self, fake_results):
        by_window = average_by_window(fake_results, "2017")
        assert set(by_window) == {7, 90}
        assert by_window[7] == pytest.approx((200.0 + 100.0) / 2)
        assert by_window[90] == pytest.approx((400.0 + 0.0) / 2)

    def test_average_by_category(self, fake_results):
        by_cat = average_by_category(fake_results, "2017")
        assert by_cat[DataCategory.MACRO] == pytest.approx(
            (200.0 + 400.0) / 2
        )
        assert by_cat[DataCategory.TECHNICAL] == pytest.approx(50.0)

    def test_overall(self, fake_results):
        assert overall_average(fake_results, "2019") == pytest.approx(100.0)
        with pytest.raises(ValueError):
            overall_average(fake_results, "2030")


class TestConfig:
    def test_default_grids_by_model(self):
        assert "max_features" in ImprovementConfig(model="rf").resolved_grid()
        assert "learning_rate" in ImprovementConfig(
            model="gb"
        ).resolved_grid()

    def test_custom_grid_wins(self):
        cfg = ImprovementConfig(model="rf", param_grid={"max_depth": [3]})
        assert cfg.resolved_grid() == {"max_depth": [3]}

    def test_estimator_families(self):
        from repro.ml import (
            GradientBoostingRegressor,
            MLPRegressor,
            RandomForestRegressor,
            StackingRegressor,
        )

        assert isinstance(
            ImprovementConfig(model="rf").make_estimator(),
            RandomForestRegressor,
        )
        assert isinstance(
            ImprovementConfig(model="gb").make_estimator(),
            GradientBoostingRegressor,
        )
        assert isinstance(
            ImprovementConfig(model="mlp").make_estimator(),
            MLPRegressor,
        )
        assert isinstance(
            ImprovementConfig(model="stack").make_estimator(),
            StackingRegressor,
        )
        with pytest.raises(ValueError):
            ImprovementConfig(model="svm").make_estimator()
        with pytest.raises(ValueError):
            ImprovementConfig(model="svm").resolved_grid()

    def test_stack_family_evaluates(self, scenario_2017_7):
        sub_names = scenario_2017_7.feature_names[:8]
        cfg = ImprovementConfig(model="stack",
                                param_grid={"cv_folds": [2]},
                                cv_folds=2)
        mse = evaluate_feature_set(scenario_2017_7, sub_names, cfg)
        assert mse > 0
