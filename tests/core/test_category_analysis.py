"""Tests for the isolated-category analysis extension."""

import numpy as np
import pytest

from repro.categories import DataCategory
from repro.core.category_analysis import (
    analyze_all_categories,
    analyze_category,
)

FAST_RF = {"n_estimators": 5, "max_depth": 8, "max_features": "sqrt",
           "min_samples_leaf": 2}


class TestAnalyzeCategory:
    @pytest.fixture(scope="class")
    def profile(self, scenario_2017_7):
        return analyze_category(
            scenario_2017_7, DataCategory.TECHNICAL, rf_params=FAST_RF
        )

    def test_counts_match_scenario(self, profile, scenario_2017_7):
        assert profile.n_features == len(
            scenario_2017_7.columns_in(DataCategory.TECHNICAL)
        )

    def test_importance_normalised(self, profile):
        total = sum(profile.feature_importance.values())
        assert total == pytest.approx(1.0)
        assert all(v >= 0 for v in profile.feature_importance.values())

    def test_top_feature_is_max(self, profile):
        ranked = profile.ranked_features()
        assert ranked[0][0] == profile.top_feature
        values = [v for _, v in ranked]
        assert values == sorted(values, reverse=True)

    def test_scores_finite(self, profile):
        assert profile.cv_mse > 0
        assert np.isfinite(profile.cv_r2)

    def test_redundancy_positive(self, profile):
        assert profile.redundancy > 0

    def test_empty_category_rejected(self, scenario_2017_7):
        with pytest.raises(ValueError):
            analyze_category(scenario_2017_7, DataCategory.ONCHAIN_USDC,
                             rf_params=FAST_RF)

    def test_deterministic(self, scenario_2017_7):
        a = analyze_category(scenario_2017_7, DataCategory.MACRO,
                             rf_params=FAST_RF, random_state=1)
        b = analyze_category(scenario_2017_7, DataCategory.MACRO,
                             rf_params=FAST_RF, random_state=1)
        assert a.cv_mse == b.cv_mse
        assert a.feature_importance == b.feature_importance


class TestAnalyzeAll:
    @pytest.fixture(scope="class")
    def profiles(self, scenario_2019_90):
        return analyze_all_categories(scenario_2019_90,
                                      rf_params=FAST_RF)

    def test_covers_populated_categories(self, profiles, scenario_2019_90):
        for category in DataCategory:
            populated = bool(scenario_2019_90.columns_in(category))
            assert (category in profiles) == populated

    def test_level_tracking_categories_score_best(self, profiles):
        """Categories that track the market level (BTC on-chain carries
        cap metrics) must clearly beat the erratic sentiment category,
        whose fast-reverting signal decays at a 90-day window. (The
        ordering *between* level-tracking categories is statistically
        tied at this ensemble size, so it is not asserted.)"""
        assert (profiles[DataCategory.ONCHAIN_BTC].cv_mse
                < profiles[DataCategory.SENTIMENT].cv_mse)

    def test_r2_ordering_consistent_with_mse(self, profiles):
        mses = [(p.cv_mse, p.cv_r2) for p in profiles.values()]
        best_by_mse = min(mses)[0]
        best_profile = next(p for p in profiles.values()
                            if p.cv_mse == best_by_mse)
        assert best_profile.cv_r2 == max(p.cv_r2 for p in profiles.values())
