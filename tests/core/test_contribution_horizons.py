"""Unit tests for contribution factors and horizon grouping."""

import pytest

from repro.categories import DataCategory
from repro.core.contribution import contribution_factors, contribution_table
from repro.core.horizons import (
    HorizonGroup,
    merge_group,
    rf_feature_importance,
    top_features,
    unique_features,
)


class TestContributionFactors:
    def test_ratio_definition(self, scenario_2017_7):
        sc = scenario_2017_7
        tech = sc.columns_in(DataCategory.TECHNICAL)
        final = tech[:4]  # pretend only 4 technical features survived
        factors = contribution_factors(sc, final)
        assert factors[DataCategory.TECHNICAL] == pytest.approx(
            4 / len(tech)
        )
        assert factors[DataCategory.MACRO] == 0.0

    def test_all_kept_gives_one(self, scenario_2017_7):
        sc = scenario_2017_7
        macro = sc.columns_in(DataCategory.MACRO)
        factors = contribution_factors(sc, macro)
        assert factors[DataCategory.MACRO] == pytest.approx(1.0)

    def test_absent_category_omitted(self, scenario_2017_7):
        """USDC has no candidates in the 2017 set → no ratio reported."""
        factors = contribution_factors(scenario_2017_7, [])
        assert DataCategory.ONCHAIN_USDC not in factors

    def test_unknown_feature_rejected(self, scenario_2017_7):
        with pytest.raises(ValueError):
            contribution_factors(scenario_2017_7, ["made_up_feature"])

    def test_factors_in_unit_interval(self, results):
        for period in ("2017", "2019"):
            for factors in results.contributions(period).values():
                for value in factors.values():
                    assert 0.0 <= value <= 1.0


class TestContributionTable:
    def test_pivot(self):
        per_window = {
            7: {DataCategory.MACRO: 0.1, DataCategory.TECHNICAL: 0.5},
            90: {DataCategory.MACRO: 0.4},
        }
        table = contribution_table(per_window)
        assert table[DataCategory.MACRO] == [0.1, 0.4]
        assert table[DataCategory.TECHNICAL] == [0.5, 0.0]


class TestHorizonGroups:
    def test_merge_averages_common(self):
        a = {"x": 0.4, "y": 0.2}
        b = {"x": 0.2, "z": 0.6}
        group = merge_group("g", [a, b])
        assert group.importances["x"] == pytest.approx(0.3)
        assert group.importances["y"] == pytest.approx(0.2)
        assert group.importances["z"] == pytest.approx(0.6)

    def test_merge_empty_rejected(self):
        with pytest.raises(ValueError):
            merge_group("g", [])

    def test_ranked_order(self):
        group = HorizonGroup("g", {"a": 0.1, "b": 0.5, "c": 0.3})
        assert [f for f, _ in group.ranked()] == ["b", "c", "a"]

    def test_ranked_ties_alphabetical(self):
        group = HorizonGroup("g", {"b": 0.5, "a": 0.5})
        assert [f for f, _ in group.ranked()] == ["a", "b"]

    def test_top_features(self):
        group = HorizonGroup("g", {"a": 0.1, "b": 0.5, "c": 0.3})
        assert top_features(group, 2) == ["b", "c"]
        with pytest.raises(ValueError):
            top_features(group, 0)

    def test_unique_features(self):
        short = HorizonGroup("s", {"a": 0.5, "b": 0.3, "c": 0.2})
        long_ = HorizonGroup("l", {"b": 0.4, "d": 0.6})
        assert unique_features(short, long_, 20) == ["a", "c"]
        assert unique_features(long_, short, 20) == ["d"]

    def test_unique_respects_k(self):
        short = HorizonGroup("s", {f"f{i}": 1.0 - i / 10 for i in range(8)})
        long_ = HorizonGroup("l", {})
        assert len(unique_features(short, long_, 3)) == 3


class TestRfImportance:
    def test_importance_over_subset(self, scenario_2017_7):
        subset = scenario_2017_7.feature_names[:6]
        imp = rf_feature_importance(
            scenario_2017_7, subset,
            rf_params={"n_estimators": 4, "max_depth": 5,
                       "max_features": "sqrt"},
        )
        assert set(imp) == set(subset)
        assert all(v >= 0 for v in imp.values())
        assert sum(imp.values()) == pytest.approx(1.0)

    def test_deterministic(self, scenario_2017_7):
        subset = scenario_2017_7.feature_names[:6]
        params = {"n_estimators": 4, "max_depth": 5,
                  "max_features": "sqrt"}
        a = rf_feature_importance(scenario_2017_7, subset, rf_params=params)
        b = rf_feature_importance(scenario_2017_7, subset, rf_params=params)
        assert a == b
