"""Integration tests over one full fast experiment run.

These assertions check both the plumbing (every accessor works, shapes
line up) and the *reproduction shapes* the paper reports, at the level of
robustness the fast preset can support.
"""

import numpy as np
import pytest

from repro.categories import DataCategory
from repro.core.pipeline import ExperimentConfig


class TestRunArtifacts:
    def test_all_scenarios_present(self, results, fast_config):
        expected = {
            f"{p}_{w}"
            for p in fast_config.periods for w in fast_config.windows
        }
        assert set(results.artifacts) == expected

    def test_runtime_recorded(self, results):
        assert results.runtime_seconds > 0

    def test_table1_sizes_positive_and_bounded(self, results, fast_config):
        sizes = results.table1_vector_sizes()
        for key, n in sizes.items():
            assert 1 <= n <= 2 * fast_config.top_k, key

    def test_final_features_subset_of_candidates(self, results):
        for art in results.artifacts.values():
            candidates = set(art.scenario.feature_names)
            assert set(art.selection.final_features) <= candidates

    def test_rf_importance_covers_final_vector(self, results):
        for art in results.artifacts.values():
            assert set(art.rf_importance) == set(
                art.selection.final_features
            )

    def test_shap_overlap_positive(self, results):
        """FRA and SHAP must agree on a meaningful share of features."""
        assert results.mean_shap_overlap() > 0.3 * min(
            art.selection.fra.selected.__len__()
            for art in results.artifacts.values()
        )


class TestContributionShapes:
    def test_usdc_only_in_2019(self, results):
        for factors in results.contributions("2017").values():
            assert DataCategory.ONCHAIN_USDC not in factors
        assert any(
            DataCategory.ONCHAIN_USDC in factors
            for factors in results.contributions("2019").values()
        )

    def test_onchain_btc_contributes_everywhere(self, results):
        """The paper's headline: on-chain metrics matter at all windows."""
        for period in ("2017", "2019"):
            for factors in results.contributions(period).values():
                assert factors[DataCategory.ONCHAIN_BTC] > 0


class TestHorizonTables:
    def test_table3_shapes(self, results):
        table = results.table3_top_features("2019", k=5)
        assert len(table["Short-term"]) == 5
        assert len(table["Long-term"]) == 5

    def test_table4_unique_disjoint_from_other_group(self, results):
        for period in ("2017", "2019"):
            short, long_ = results.horizon_groups(period)
            table = results.table4_unique_features(period, k=10)
            for feature in table["Short-term"]:
                assert feature not in long_.importances
            for feature in table["Long-term"]:
                assert feature not in short.importances

    def test_groups_nonempty(self, results):
        short, long_ = results.horizon_groups("2017")
        assert short.importances and long_.importances


class TestImprovementTables:
    def test_table5_has_all_windows(self, results, fast_config):
        for period in ("2017", "2019"):
            table = results.table5_improvement_by_window(period)
            assert set(table) == set(fast_config.windows)

    def test_table6_covers_major_categories(self, results):
        table_2017 = results.table6_improvement_by_category("2017")
        assert DataCategory.ONCHAIN_USDC not in table_2017
        table_2019 = results.table6_improvement_by_category("2019")
        assert DataCategory.ONCHAIN_USDC in table_2019

    def test_diversity_helps_on_average(self, results):
        """§4.3's core claim at fast-preset robustness: the average
        improvement across categories is positive."""
        for period in ("2017", "2019"):
            assert results.overall_improvement(period) > 0

    def test_btc_onchain_benefits_least_among_full_categories(self, results):
        """Table 6's standout row: BTC on-chain needs diversity least."""
        for period in ("2017", "2019"):
            table = results.table6_improvement_by_category(period)
            assert table[DataCategory.ONCHAIN_BTC] <= min(
                table[DataCategory.MACRO],
                table[DataCategory.SENTIMENT],
            )

    def test_gb_validation_available(self, results):
        assert results.overall_improvement(
            "2017", "gb"
        ) == pytest.approx(
            np.mean([
                r.mean_improvement()
                for r in results.improvements_gb if r.period == "2017"
            ])
        )

    def test_unknown_model_rejected(self, results):
        with pytest.raises(ValueError):
            results.overall_improvement("2017", "svm")


class TestRunTelemetry:
    """The fast run must trace every pipeline stage (repro.obs)."""

    def test_run_summary_attached(self, results):
        summary = results.run_summary
        assert summary.spans
        assert summary.total_seconds > 0

    def test_every_stage_traced(self, results):
        # the shared fixture passes a pre-built dataset, so synth spans
        # are exercised separately in test_dataset_generation_traced
        names = {s.name for s in results.run_summary.spans}
        assert {
            "experiment.run",
            "scenarios.build",
            "fra.reduce",
            "fra.iteration",
            "selection.shap",
            "selection.select",
            "horizons.rf_importance",
            "improvement.scenario",
            "improvement.feature_set",
        } <= names

    def test_every_scenario_has_stage_spans(self, results):
        spans = results.run_summary.spans
        for stage in ("pipeline.scenario", "improvement.scenario",
                      "horizons.rf_importance"):
            traced = {
                s.attrs.get("scenario") for s in spans if s.name == stage
            }
            assert set(results.artifacts) <= traced, stage

    def test_spans_nest_under_root(self, results):
        spans = results.run_summary.spans
        roots = [s for s in spans if s.parent_id is None]
        assert [s.name for s in roots] == ["experiment.run"]
        ids = {s.span_id for s in spans}
        for record in spans:
            if record.parent_id is not None:
                assert record.parent_id in ids

    def test_metrics_recorded(self, results, fast_config):
        metrics = results.run_summary.metrics
        assert metrics["counters"]["fra.features_eliminated"] > 0
        assert metrics["counters"]["fra.iterations"] > 0
        n_scenarios = len(results.artifacts)
        assert metrics["histograms"]["selection.shap_overlap"][
            "count"] == n_scenarios
        assert metrics["histograms"]["selection.final_size"][
            "count"] == n_scenarios
        # diverse + per-category MSEs for RF and GB across all scenarios
        assert metrics["histograms"]["improvement.mse"]["count"] >= (
            2 * n_scenarios
        )
        assert metrics["gauges"]["experiment.scenarios"] == n_scenarios

    def test_stage_breakdown_covers_hot_stages(self, results):
        breakdown = results.run_summary.breakdown()
        for stage in ("scenarios", "fra", "selection",
                      "horizons", "improvement"):
            assert breakdown.get(stage, 0.0) > 0.0, stage

    def test_dataset_generation_traced(self, fast_config):
        from repro.obs import Tracer, use_tracer
        from repro.synth import generate_raw_dataset

        tracer = Tracer()
        with use_tracer(tracer):
            generate_raw_dataset(fast_config.simulation)
        names = {s.name for s in tracer.spans}
        assert {"synth.dataset", "synth.latent", "synth.universe",
                "synth.category"} <= names
        by_name = {}
        for record in tracer.spans:
            by_name.setdefault(record.name, []).append(record)
        root = by_name["synth.dataset"][0]
        assert all(s.parent_id == root.span_id
                   for s in by_name["synth.category"])
        categories = {
            s.attrs["category"] for s in by_name["synth.category"]
        }
        assert "technical" in categories and "macro" in categories

    def test_runs_use_isolated_tracers(self, results):
        """A run's spans never leak into the ambient default tracer."""
        from repro.obs import current_tracer

        run_ids = {id(s) for s in results.run_summary.spans}
        ambient = {id(s) for s in current_tracer().spans}
        assert not run_ids & ambient


class TestConfigPresets:
    def test_fast_preset_small(self):
        cfg = ExperimentConfig.fast()
        assert cfg.fra.rf_params["n_estimators"] <= 10
        assert cfg.windows == (7, 90)

    def test_default_preset_full_windows(self):
        cfg = ExperimentConfig.default()
        assert cfg.windows == (1, 7, 30, 90, 180)

    def test_paper_preset_scales_up(self):
        paper = ExperimentConfig.paper()
        default = ExperimentConfig.default()
        assert (paper.fra.rf_params["n_estimators"]
                > default.fra.rf_params["n_estimators"])
        assert paper.improvement_rf.cv_folds == 5

    def test_seed_threads_through(self):
        cfg = ExperimentConfig.fast(seed=777)
        assert cfg.simulation.seed == 777
