"""Unit tests for the Feature Reduction Algorithm."""

import numpy as np
import pytest

from repro.core.fra import FRAConfig, FRAResult, fra_reduce

TINY = FRAConfig(
    target_size=5,
    rf_params={"n_estimators": 5, "max_depth": 5, "max_features": "sqrt"},
    gb_params={"n_estimators": 8, "max_depth": 3, "learning_rate": 0.2},
    pfi_repeats=1,
    pfi_max_rows=120,
    random_state=0,
)


@pytest.fixture(scope="module")
def synthetic_problem():
    """20 features: 4 informative (0-3), 16 noise."""
    rng = np.random.default_rng(10)
    n = 400
    X = rng.normal(size=(n, 20))
    y = (
        4.0 * X[:, 0] + 3.0 * X[:, 1] - 2.5 * X[:, 2]
        + 2.0 * np.sin(2 * X[:, 3])
        + 0.2 * rng.normal(size=n)
    )
    names = [f"f{i:02d}" for i in range(20)]
    return X, y, names


class TestReduction:
    def test_reaches_target(self, synthetic_problem):
        X, y, names = synthetic_problem
        result = fra_reduce(X, y, names, TINY)
        assert len(result.selected) <= TINY.target_size

    def test_keeps_informative_features(self, synthetic_problem):
        X, y, names = synthetic_problem
        result = fra_reduce(X, y, names, TINY)
        survivors = set(result.selected)
        # the three strong linear features must survive
        assert {"f00", "f01", "f02"} <= survivors

    def test_ranking_puts_strongest_first(self, synthetic_problem):
        X, y, names = synthetic_problem
        result = fra_reduce(X, y, names, TINY)
        assert result.selected[0] == "f00"

    def test_history_records_iterations(self, synthetic_problem):
        X, y, names = synthetic_problem
        result = fra_reduce(X, y, names, TINY)
        assert result.n_iterations >= 1
        for record in result.history:
            assert set(record) == {
                "n_features", "corr_threshold", "n_removed"
            }
        thresholds = [r["corr_threshold"] for r in result.history]
        assert thresholds == sorted(thresholds)
        assert thresholds[0] == pytest.approx(TINY.corr_start)

    def test_threshold_increments_by_step(self, synthetic_problem):
        X, y, names = synthetic_problem
        result = fra_reduce(X, y, names, TINY)
        if result.n_iterations >= 2:
            diff = (result.history[1]["corr_threshold"]
                    - result.history[0]["corr_threshold"])
            assert diff == pytest.approx(TINY.corr_step)

    def test_importances_cover_selected(self, synthetic_problem):
        X, y, names = synthetic_problem
        result = fra_reduce(X, y, names, TINY)
        assert set(result.importances) == set(result.selected)
        # ranking consistent with importances
        values = [result.importances[n] for n in result.selected]
        assert values == sorted(values, reverse=True)

    def test_no_reduction_needed(self, synthetic_problem):
        X, y, names = synthetic_problem
        config = FRAConfig(
            target_size=50,
            rf_params=TINY.rf_params, gb_params=TINY.gb_params,
            pfi_repeats=1, pfi_max_rows=120,
        )
        result = fra_reduce(X, y, names, config)
        assert sorted(result.selected) == sorted(names)
        assert result.n_iterations == 0

    def test_deterministic(self, synthetic_problem):
        X, y, names = synthetic_problem
        a = fra_reduce(X, y, names, TINY)
        b = fra_reduce(X, y, names, TINY)
        assert a.selected == b.selected

    def test_seed_changes_outcome_possible(self, synthetic_problem):
        """Different random states may tie-break differently but must
        still retain the informative features."""
        X, y, names = synthetic_problem
        other = FRAConfig(
            target_size=5, rf_params=TINY.rf_params,
            gb_params=TINY.gb_params, pfi_repeats=1, pfi_max_rows=120,
            random_state=99,
        )
        result = fra_reduce(X, y, names, other)
        assert {"f00", "f01", "f02"} <= set(result.selected)


class TestValidation:
    def test_width_mismatch(self, synthetic_problem):
        X, y, names = synthetic_problem
        with pytest.raises(ValueError):
            fra_reduce(X, y, names[:-1], TINY)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            FRAConfig(target_size=0)
        with pytest.raises(ValueError):
            FRAConfig(corr_step=0.0)
        with pytest.raises(ValueError):
            FRAConfig(max_iterations=0)

    def test_result_type(self, synthetic_problem):
        X, y, names = synthetic_problem
        assert isinstance(fra_reduce(X, y, names, TINY), FRAResult)
