"""Shared fixtures for core tests.

The expensive artefacts (simulated dataset, scenarios, one full fast
experiment) are session-scoped: they are built once and shared by every
test that reads them.
"""

import pytest

from repro import ExperimentConfig, run_experiment
from repro.core.scenarios import build_scenario
from repro.synth import SimulationConfig, generate_raw_dataset


@pytest.fixture(scope="session")
def fast_config():
    return ExperimentConfig.fast()


@pytest.fixture(scope="session")
def raw(fast_config):
    """The fast-preset dataset (2016-06 .. 2020-12)."""
    return generate_raw_dataset(fast_config.simulation)


@pytest.fixture(scope="session")
def scenario_2017_7(raw):
    return build_scenario(raw, "2017", 7)


@pytest.fixture(scope="session")
def scenario_2019_90(raw):
    return build_scenario(raw, "2019", 90)


@pytest.fixture(scope="session")
def results(fast_config, raw):
    """One full fast experiment, shared across the test module."""
    return run_experiment(fast_config, raw=raw)
