"""Unit tests for repro.core.scenarios."""

import numpy as np
import pytest

from repro.categories import DataCategory
from repro.core.crypto100 import crypto100_index
from repro.core.scenarios import (
    PERIODS,
    build_all_scenarios,
    build_scenario,
    scenario_key,
)


class TestScenarioConstruction:
    def test_key_format(self):
        assert scenario_key("2017", 30) == "2017_30"

    def test_supervised_shapes(self, scenario_2017_7):
        sc = scenario_2017_7
        assert sc.X.shape == (sc.n_samples, sc.n_features)
        assert sc.y.shape == (sc.n_samples,)
        assert len(sc.feature_names) == sc.n_features

    def test_no_nans_in_supervised_data(self, scenario_2017_7):
        assert not np.isnan(scenario_2017_7.X).any()
        assert not np.isnan(scenario_2017_7.y).any()

    def test_target_is_future_crypto100(self, raw, scenario_2017_7):
        """y[i] must equal the Crypto100 price `window` days after row i."""
        sc = scenario_2017_7
        index_frame = crypto100_index(raw.universe)
        start, end = PERIODS["2017"]
        sliced = index_frame.loc_range(start, end)["crypto100"]
        assert np.allclose(sc.y, sliced[sc.window:])

    def test_window_shrinks_samples(self, raw):
        w7 = build_scenario(raw, "2017", 7)
        w90 = build_scenario(raw, "2017", 90)
        assert w7.n_samples - w90.n_samples == 83

    def test_usdc_absent_from_2017(self, scenario_2017_7):
        assert scenario_2017_7.columns_in(DataCategory.ONCHAIN_USDC) == []

    def test_usdc_present_in_2019(self, scenario_2019_90):
        assert len(
            scenario_2019_90.columns_in(DataCategory.ONCHAIN_USDC)
        ) > 30

    def test_2019_has_more_candidates(self, scenario_2017_7,
                                      scenario_2019_90):
        """Matches the paper: 283 metrics in set 2019 vs 192 in set 2017."""
        assert scenario_2019_90.n_features > scenario_2017_7.n_features

    def test_unknown_period(self, raw):
        with pytest.raises(ValueError):
            build_scenario(raw, "2021", 7)

    def test_bad_window(self, raw):
        with pytest.raises(ValueError):
            build_scenario(raw, "2017", 0)

    def test_oversized_window(self, raw):
        with pytest.raises(ValueError):
            build_scenario(raw, "2019", 10**6)


class TestScenarioMethods:
    def test_select_features_subsets_columns(self, scenario_2017_7):
        names = scenario_2017_7.feature_names[:5]
        sub = scenario_2017_7.select_features(names)
        assert sub.feature_names == names
        assert sub.X.shape == (scenario_2017_7.n_samples, 5)
        assert np.array_equal(sub.y, scenario_2017_7.y)

    def test_select_features_respects_order(self, scenario_2017_7):
        names = list(reversed(scenario_2017_7.feature_names[:4]))
        sub = scenario_2017_7.select_features(names)
        for j, name in enumerate(names):
            col = scenario_2017_7.feature_names.index(name)
            assert np.array_equal(sub.X[:, j], scenario_2017_7.X[:, col])

    def test_select_unknown_feature(self, scenario_2017_7):
        with pytest.raises(ValueError):
            scenario_2017_7.select_features(["not_a_feature"])

    def test_split_chronological(self, scenario_2017_7):
        X_tr, X_te, y_tr, y_te = scenario_2017_7.split(0.2)
        n = scenario_2017_7.n_samples
        assert len(X_tr) + len(X_te) == n
        assert len(X_te) == pytest.approx(0.2 * n, abs=1)
        assert np.array_equal(X_tr, scenario_2017_7.X[:len(X_tr)])

    def test_split_bad_frac(self, scenario_2017_7):
        with pytest.raises(ValueError):
            scenario_2017_7.split(0.0)
        with pytest.raises(ValueError):
            scenario_2017_7.split(1.0)

    def test_columns_in_partition(self, scenario_2019_90):
        total = sum(
            len(scenario_2019_90.columns_in(c)) for c in DataCategory
        )
        assert total == scenario_2019_90.n_features


class TestBuildAll:
    def test_all_keys_present(self, raw):
        scenarios = build_all_scenarios(raw, windows=(7, 90))
        assert set(scenarios) == {"2017_7", "2017_90", "2019_7", "2019_90"}

    def test_each_key_matches_scenario(self, raw):
        scenarios = build_all_scenarios(raw, windows=(7,))
        for key, sc in scenarios.items():
            assert sc.key == key
