"""Unit tests for SHAP ranking and final-vector selection."""

import numpy as np
import pytest

from repro.core.fra import FRAConfig, FRAResult
from repro.core.selection import (
    SHAPConfig,
    select_final_features,
    shap_ranking,
)

TINY_FRA = FRAConfig(
    target_size=6,
    rf_params={"n_estimators": 5, "max_depth": 5, "max_features": "sqrt"},
    gb_params={"n_estimators": 8, "max_depth": 3, "learning_rate": 0.2},
    pfi_repeats=1,
    pfi_max_rows=120,
)
TINY_SHAP = SHAPConfig(
    gb_params={"n_estimators": 8, "max_depth": 3, "learning_rate": 0.2},
    max_rows=40,
)


@pytest.fixture(scope="module")
def problem():
    rng = np.random.default_rng(21)
    n = 300
    X = rng.normal(size=(n, 12))
    y = 5 * X[:, 0] + 3 * X[:, 1] + 0.1 * rng.normal(size=n)
    names = [f"f{i:02d}" for i in range(12)]
    return X, y, names


class TestShapRanking:
    def test_returns_all_names(self, problem):
        X, y, names = problem
        order = shap_ranking(X, y, names, TINY_SHAP)
        assert sorted(order) == sorted(names)

    def test_informative_first(self, problem):
        X, y, names = problem
        order = shap_ranking(X, y, names, TINY_SHAP)
        assert set(order[:2]) == {"f00", "f01"}

    def test_deterministic(self, problem):
        X, y, names = problem
        assert shap_ranking(X, y, names, TINY_SHAP) == shap_ranking(
            X, y, names, TINY_SHAP
        )

    def test_width_mismatch(self, problem):
        X, y, names = problem
        with pytest.raises(ValueError):
            shap_ranking(X, y, names[:-1], TINY_SHAP)


class TestFinalSelection:
    def test_union_semantics(self, problem):
        X, y, names = problem
        result = select_final_features(
            X, y, names, fra_config=TINY_FRA, shap_config=TINY_SHAP,
            top_k=4,
        )
        fra_top = set(result.fra.selected[:4])
        shap_top = set(result.shap_order[:4])
        assert set(result.final_features) == fra_top | shap_top

    def test_fra_order_first(self, problem):
        X, y, names = problem
        result = select_final_features(
            X, y, names, fra_config=TINY_FRA, shap_config=TINY_SHAP,
            top_k=4,
        )
        k = min(4, len(result.fra.selected))
        assert result.final_features[:k] == result.fra.selected[:k]

    def test_no_duplicates(self, problem):
        X, y, names = problem
        result = select_final_features(
            X, y, names, fra_config=TINY_FRA, shap_config=TINY_SHAP,
            top_k=6,
        )
        assert len(result.final_features) == len(set(result.final_features))

    def test_overlap_bounds(self, problem):
        X, y, names = problem
        result = select_final_features(
            X, y, names, fra_config=TINY_FRA, shap_config=TINY_SHAP,
        )
        assert 0 <= result.overlap_top100 <= len(result.fra.selected)

    def test_informative_in_final(self, problem):
        X, y, names = problem
        result = select_final_features(
            X, y, names, fra_config=TINY_FRA, shap_config=TINY_SHAP,
            top_k=3,
        )
        assert {"f00", "f01"} <= set(result.final_features)

    def test_reuses_precomputed_fra(self, problem):
        X, y, names = problem
        canned = FRAResult(
            selected=["f00", "f01"],
            importances={"f00": 2.0, "f01": 1.0},
            history=[],
        )
        result = select_final_features(
            X, y, names, shap_config=TINY_SHAP, top_k=2,
            fra_result=canned,
        )
        assert result.fra is canned
        assert "f00" in result.final_features
