"""Tests for the markdown report exporter."""

from repro.core.report import export_markdown, write_markdown_report


class TestMarkdownExport:
    def test_contains_all_sections(self, results):
        doc = export_markdown(results)
        for heading in (
            "# Reproduction report",
            "## Table 1",
            "## Figure 3",
            "## Figure 4",
            "## Table 3",
            "## Table 4",
            "## Table 5",
            "## Table 6",
            "## Overall averages",
        ):
            assert heading in doc, heading

    def test_tables_are_valid_markdown(self, results):
        doc = export_markdown(results)
        table_lines = [l for l in doc.splitlines() if l.startswith("|")]
        assert table_lines
        # every table row has balanced pipes with its header
        for line in table_lines:
            assert line.count("|") >= 3

    def test_scenario_keys_present(self, results):
        doc = export_markdown(results)
        for key in results.table1_vector_sizes():
            assert key in doc

    def test_improvement_values_formatted(self, results):
        doc = export_markdown(results)
        assert "%" in doc

    def test_write_roundtrip(self, results, tmp_path):
        path = write_markdown_report(results, tmp_path / "sub" / "r.md")
        assert path.exists()
        assert path.read_text() == export_markdown(results)

    def test_metadata_line(self, results):
        doc = export_markdown(results)
        assert str(results.config.simulation.seed) in doc
