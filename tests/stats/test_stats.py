"""Unit tests for repro.stats."""

import numpy as np
import pytest

from repro.stats import (
    acf,
    block_bootstrap_ci,
    diebold_mariano,
    improvement_ci,
    ljung_box,
)


class TestDieboldMariano:
    def test_clearly_better_forecast_detected(self):
        rng = np.random.default_rng(0)
        y = rng.normal(size=500)
        good = y + 0.1 * rng.normal(size=500)
        bad = y + 1.0 * rng.normal(size=500)
        res = diebold_mariano(y, good, bad)
        assert res.favors_first
        assert res.statistic < -3
        assert res.p_value < 0.01

    def test_symmetric_under_swap(self):
        rng = np.random.default_rng(1)
        y = rng.normal(size=300)
        a = y + 0.3 * rng.normal(size=300)
        b = y + 0.6 * rng.normal(size=300)
        r_ab = diebold_mariano(y, a, b)
        r_ba = diebold_mariano(y, b, a)
        assert r_ab.statistic == pytest.approx(-r_ba.statistic)
        assert r_ab.p_value == pytest.approx(r_ba.p_value)

    def test_equal_forecasts_null_not_rejected(self):
        rng = np.random.default_rng(2)
        y = rng.normal(size=300)
        noise = rng.normal(size=300)
        a = y + 0.5 * noise
        res = diebold_mariano(y, a, a.copy())
        assert res.statistic == 0.0
        assert res.p_value == 1.0

    def test_similar_quality_not_rejected(self):
        rng = np.random.default_rng(3)
        y = rng.normal(size=400)
        a = y + 0.5 * rng.normal(size=400)
        b = y + 0.5 * rng.normal(size=400)
        res = diebold_mariano(y, a, b)
        assert res.p_value > 0.01

    def test_one_sided_alternatives(self):
        rng = np.random.default_rng(4)
        y = rng.normal(size=400)
        good = y + 0.1 * rng.normal(size=400)
        bad = y + 1.0 * rng.normal(size=400)
        less = diebold_mariano(y, good, bad, alternative="less")
        greater = diebold_mariano(y, good, bad, alternative="greater")
        assert less.p_value < 0.01
        assert greater.p_value > 0.99
        assert less.p_value + greater.p_value == pytest.approx(1.0)

    def test_absolute_loss(self):
        rng = np.random.default_rng(5)
        y = rng.normal(size=400)
        good = y + 0.1 * rng.normal(size=400)
        bad = y + 1.0 * rng.normal(size=400)
        res = diebold_mariano(y, good, bad, loss="absolute")
        assert res.favors_first

    def test_horizon_widens_variance(self):
        """Using a longer HAC window must not shrink the p-value for an
        MA-correlated differential."""
        rng = np.random.default_rng(6)
        y = rng.normal(size=500)
        shock = rng.normal(size=500)
        # errors with overlapping-window correlation
        e = np.convolve(shock, np.ones(5) / 5, mode="same")
        a = y + e
        b = y + 1.3 * e + 0.2 * rng.normal(size=500)
        h1 = diebold_mariano(y, a, b, horizon=1)
        h5 = diebold_mariano(y, a, b, horizon=5)
        assert abs(h5.statistic) <= abs(h1.statistic) + 1e-9

    def test_validation(self):
        y = np.zeros(10)
        with pytest.raises(ValueError):
            diebold_mariano(y, y[:5], y)
        with pytest.raises(ValueError):
            diebold_mariano(y, y, y, horizon=0)
        with pytest.raises(ValueError):
            diebold_mariano(y, y, y, horizon=6)
        with pytest.raises(ValueError):
            diebold_mariano(y, y, y, loss="huber")
        with pytest.raises(ValueError):
            diebold_mariano(y, y, y, alternative="sideways")


class TestBlockBootstrap:
    def test_ci_contains_point_for_mean(self):
        rng = np.random.default_rng(7)
        values = rng.normal(5.0, 1.0, size=400)
        point, lo, hi = block_bootstrap_ci(values, block=20,
                                           n_resamples=300,
                                           random_state=0)
        assert lo <= point <= hi
        assert point == pytest.approx(5.0, abs=0.3)

    def test_reproducible(self):
        values = np.random.default_rng(8).normal(size=200)
        a = block_bootstrap_ci(values, random_state=1, n_resamples=100)
        b = block_bootstrap_ci(values, random_state=1, n_resamples=100)
        assert a == b

    def test_wider_ci_for_autocorrelated_series(self):
        """Block bootstrap must report more uncertainty for a random walk
        than i.i.d.-style tiny blocks do."""
        rng = np.random.default_rng(9)
        walk = np.cumsum(rng.normal(size=500))
        _, lo_small, hi_small = block_bootstrap_ci(
            walk, block=1, n_resamples=300, random_state=0
        )
        _, lo_big, hi_big = block_bootstrap_ci(
            walk, block=50, n_resamples=300, random_state=0
        )
        assert (hi_big - lo_big) > (hi_small - lo_small)

    def test_custom_statistic(self):
        values = np.arange(100.0)
        point, lo, hi = block_bootstrap_ci(
            values, statistic=np.median, block=10, n_resamples=100,
            random_state=0,
        )
        assert point == 49.5

    def test_validation(self):
        with pytest.raises(ValueError):
            block_bootstrap_ci(np.array([]))
        with pytest.raises(ValueError):
            block_bootstrap_ci(np.ones(10), block=11)
        with pytest.raises(ValueError):
            block_bootstrap_ci(np.ones(10), n_resamples=0)
        with pytest.raises(ValueError):
            block_bootstrap_ci(np.ones(10), confidence=1.0)


class TestImprovementCI:
    def test_known_improvement_recovered(self):
        rng = np.random.default_rng(10)
        y = rng.normal(size=600)
        improved = y + 0.1 * rng.normal(size=600)
        baseline = y + 0.5 * rng.normal(size=600)
        point, lo, hi = improvement_ci(y, baseline, improved,
                                       n_resamples=300, random_state=0)
        # variance ratio 25 -> ~2400 % improvement
        assert lo <= point <= hi
        assert point > 1000.0
        assert lo > 300.0  # clearly positive

    def test_no_improvement_ci_straddles_zero(self):
        rng = np.random.default_rng(11)
        y = rng.normal(size=600)
        a = y + 0.5 * rng.normal(size=600)
        b = y + 0.5 * rng.normal(size=600)
        point, lo, hi = improvement_ci(y, a, b, n_resamples=300,
                                       random_state=0)
        assert lo < 0 < hi

    def test_validation(self):
        with pytest.raises(ValueError):
            improvement_ci(np.ones(5), np.ones(4), np.ones(5))


class TestDiagnostics:
    def test_acf_lag0_is_one(self):
        values = np.random.default_rng(12).normal(size=100)
        assert acf(values, 5)[0] == 1.0

    def test_acf_bounded(self):
        values = np.cumsum(np.random.default_rng(13).normal(size=300))
        rho = acf(values, 30)
        assert (np.abs(rho) <= 1.0 + 1e-12).all()

    def test_acf_of_persistent_series_high(self):
        walk = np.cumsum(np.random.default_rng(14).normal(size=500))
        assert acf(walk, 1)[1] > 0.9

    def test_acf_constant_series(self):
        rho = acf(np.full(50, 3.0), 5)
        assert rho[0] == 1.0
        assert np.allclose(rho[1:], 0.0)

    def test_acf_validation(self):
        with pytest.raises(ValueError):
            acf(np.array([1.0]), 1)
        with pytest.raises(ValueError):
            acf(np.ones(10), 10)

    def test_ljung_box_white_noise_passes(self):
        noise = np.random.default_rng(15).normal(size=500)
        _, p = ljung_box(noise, 10)
        assert p > 0.01

    def test_ljung_box_rejects_random_walk(self):
        walk = np.cumsum(np.random.default_rng(16).normal(size=500))
        _, p = ljung_box(walk, 10)
        assert p < 1e-6

    def test_ljung_box_validation(self):
        with pytest.raises(ValueError):
            ljung_box(np.ones(5), 10)
        with pytest.raises(ValueError):
            ljung_box(np.ones(50), 0)
