"""Stylized-facts validation of the synthetic market.

These tests check that the simulator reproduces the statistical
signatures of real crypto markets — the properties that make the
substitution in DESIGN.md §2 defensible:

1. daily returns are nearly unpredictable from their own past (weak
   linear autocorrelation), while *prices* are a near-unit-root process;
2. volatility clusters: |returns| are strongly autocorrelated;
3. returns are fat-tailed (excess kurtosis) and include crash outliers;
4. annualised volatility sits in crypto's historical 40-100 % band;
5. the cross-section co-moves (a dominant market factor), yet assets
   retain idiosyncratic risk.
"""

import numpy as np
import pytest
from scipy import stats as scipy_stats

from repro.stats import acf, ljung_box
from repro.synth import (
    SimulationConfig,
    generate_latent_market,
    generate_universe,
)


@pytest.fixture(scope="module")
def market():
    config = SimulationConfig()  # full 2016-2023 span
    latent = generate_latent_market(config)
    universe = generate_universe(config, latent)
    return latent, universe


class TestReturnDynamics:
    def test_weak_linear_autocorrelation_of_returns(self, market):
        latent, _ = market
        rho = acf(latent.market_log_return, 5)
        # momentum exists but is economically small, as in real markets
        assert np.abs(rho[1:]).max() < 0.15

    def test_prices_are_persistent(self, market):
        latent, _ = market
        rho = acf(latent.market_log_level, 1)
        assert rho[1] > 0.98

    def test_levels_fail_whiteness_test(self, market):
        latent, _ = market
        _, p = ljung_box(latent.market_log_level, 10)
        assert p < 1e-10


class TestVolatilityClustering:
    def test_abs_returns_strongly_autocorrelated(self, market):
        latent, _ = market
        abs_ret = np.abs(latent.market_log_return)
        rho = acf(abs_ret, 10)
        assert rho[1] > 0.05
        # clustering persists for many lags
        assert rho[1:11].mean() > 0.03

    def test_abs_returns_reject_whiteness(self, market):
        latent, _ = market
        _, p = ljung_box(np.abs(latent.market_log_return), 10)
        assert p < 1e-4


class TestTails:
    def test_fat_tails(self, market):
        latent, _ = market
        kurt = scipy_stats.kurtosis(latent.market_log_return)
        assert kurt > 1.0  # clearly leptokurtic vs the Gaussian's 0

    def test_crash_days_exist(self, market):
        latent, _ = market
        ret = latent.market_log_return
        assert ret.min() < -5 * ret.std()


class TestScale:
    def test_annualised_vol_in_crypto_band(self, market):
        latent, _ = market
        ann_vol = latent.market_log_return.std() * np.sqrt(365)
        assert 0.30 < ann_vol < 1.20

    def test_btc_price_plausible(self, market):
        _, universe = market
        close = universe.btc["close"]
        assert 100 < close[0] < 5_000       # 2016-ish BTC
        assert close.max() < 1_000_000      # no absurd blow-up


class TestCrossSection:
    def test_dominant_market_factor(self, market):
        _, universe = market
        log_caps = np.log(universe.caps[:, :30])
        returns = np.diff(log_caps, axis=0)
        corr = np.corrcoef(returns, rowvar=False)
        off_diag = corr[np.triu_indices_from(corr, k=1)]
        assert off_diag.mean() > 0.3  # strong common factor

    def test_idiosyncratic_risk_remains(self, market):
        _, universe = market
        log_caps = np.log(universe.caps[:, :30])
        returns = np.diff(log_caps, axis=0)
        corr = np.corrcoef(returns, rowvar=False)
        off_diag = corr[np.triu_indices_from(corr, k=1)]
        assert off_diag.max() < 0.999  # not one single asset in disguise

    def test_btc_tracks_market(self, market):
        latent, universe = market
        btc_ret = np.diff(np.log(universe.btc["close"]))
        mkt_ret = latent.market_log_return[1:]
        assert np.corrcoef(btc_ret, mkt_ret)[0, 1] > 0.9
