"""Tests for the market-scenario presets."""

import numpy as np
import pytest

from repro.synth import (
    PRESETS,
    SimulationConfig,
    baseline,
    decoupled_market,
    flow_driven_market,
    generate_latent_market,
    noisy_observation_market,
    sentiment_driven_market,
    short_history,
)


class TestPresetConfigs:
    def test_registry_complete(self):
        assert set(PRESETS) == {
            "baseline", "decoupled", "flow_driven", "sentiment_driven",
            "noisy_observation", "short_history",
        }
        for factory in PRESETS.values():
            assert isinstance(factory(), SimulationConfig)

    def test_baseline_is_default(self):
        assert baseline() == SimulationConfig()

    def test_seed_threads_through(self):
        for factory in PRESETS.values():
            assert factory(seed=99).seed == 99

    def test_decoupled_zero_macro(self):
        assert decoupled_market().macro_coupling == 0.0
        # everything else untouched
        assert decoupled_market().flow_coupling == baseline().flow_coupling

    def test_flow_driven_rebalances_couplings(self):
        cfg = flow_driven_market()
        base = baseline()
        assert cfg.flow_coupling == pytest.approx(base.flow_coupling * 2)
        assert cfg.sentiment_coupling < base.sentiment_coupling

    def test_sentiment_driven(self):
        cfg = sentiment_driven_market()
        assert cfg.sentiment_coupling > baseline().sentiment_coupling
        assert cfg.sentiment_noise < baseline().sentiment_noise

    def test_noisy_observation(self):
        cfg = noisy_observation_market()
        assert cfg.onchain_noise == pytest.approx(
            baseline().onchain_noise * 5
        )

    def test_short_history_window(self):
        cfg = short_history()
        assert cfg.start == "2020-01-01"
        assert cfg.end == baseline().end


class TestPresetBehaviour:
    def test_decoupled_market_ignores_macro(self, monkeypatch):
        """With ``macro_coupling == 0`` the macro factor has no causal
        path into returns: swapping the factor realisation leaves the
        market path bit-identical — and moves it when the coupling is
        on (a finite-sample correlation check would be noise-bound)."""
        small = dict(start="2018-01-01", end="2018-12-31", n_assets=105)
        from dataclasses import replace

        from repro.synth import latent as latent_mod

        cfg = replace(decoupled_market(seed=5), **small)
        coupled_cfg = replace(baseline(seed=5), **small)
        normal = generate_latent_market(cfg)
        coupled = generate_latent_market(coupled_cfg)

        original = latent_mod._macro_factor
        monkeypatch.setattr(
            latent_mod, "_macro_factor",
            lambda n, bank: original(n, bank) + 1.0,
        )
        swapped = generate_latent_market(cfg)
        swapped_coupled = generate_latent_market(coupled_cfg)

        assert np.array_equal(normal.market_log_return,
                              swapped.market_log_return)
        assert not np.array_equal(coupled.market_log_return,
                                  swapped_coupled.market_log_return)

    def test_short_history_fewer_days(self):
        from dataclasses import replace

        cfg = replace(short_history(seed=5), n_assets=105)
        latent = generate_latent_market(cfg)
        full = generate_latent_market(
            replace(baseline(seed=5), n_assets=105)
        )
        assert latent.n_days < full.n_days
