"""Unit tests for repro.synth.market."""

import numpy as np
import pytest

from repro.synth import btc_supply_schedule, generate_universe


class TestSupplySchedule:
    def test_monotone_increasing(self):
        supply = btc_supply_schedule(1000)
        assert np.all(np.diff(supply) > 0)

    def test_issuance_decays(self):
        supply = btc_supply_schedule(3000)
        issuance = np.diff(supply)
        assert issuance[-1] < issuance[0]
        # roughly halves every 4 years (1460 days)
        assert issuance[1460] / issuance[0] == pytest.approx(0.5, rel=0.01)

    def test_zero_days(self):
        assert btc_supply_schedule(0).size == 0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            btc_supply_schedule(-5)

    def test_plausible_range(self):
        supply = btc_supply_schedule(2738)
        assert 1.5e7 < supply[-1] < 2.1e7  # under the 21M cap


class TestUniverse:
    def test_shapes(self, small_universe, small_latent):
        assert small_universe.caps.shape == (small_latent.n_days, 110)
        assert len(small_universe.names) == 110
        assert small_universe.names[0] == "BTC"

    def test_caps_positive(self, small_universe):
        assert (small_universe.caps > 0).all()

    def test_total_vs_top100(self, small_universe):
        total = small_universe.total_cap()
        top = small_universe.top_n_cap(100)
        assert (top <= total + 1e-6).all()
        assert (top > 0.8 * total).all()  # top-100 dominates the market

    def test_top_n_mask_counts(self, small_universe):
        mask = small_universe.top_n_mask(100)
        assert (mask.sum(axis=1) == 100).all()

    def test_top_n_mask_consistent_with_cap_sum(self, small_universe):
        mask = small_universe.top_n_mask(100)
        via_mask = (small_universe.caps * mask).sum(axis=1)
        assert np.allclose(via_mask, small_universe.top_n_cap(100))

    def test_top_n_bounds(self, small_universe):
        with pytest.raises(ValueError):
            small_universe.top_n_cap(0)
        with pytest.raises(ValueError):
            small_universe.top_n_cap(111)

    def test_membership_churn_exists(self, small_universe):
        """The top-100 membership changes over time (a maturing market)."""
        mask = small_universe.top_n_mask(100)
        ever_in = mask.any(axis=0).sum()
        assert ever_in > 100  # some assets rotate in and out

    def test_deterministic(self, small_config, small_latent,
                           small_universe):
        again = generate_universe(small_config, small_latent)
        assert np.array_equal(again.caps, small_universe.caps)


class TestBtcFrame:
    def test_columns(self, small_universe):
        assert set(small_universe.btc.columns) == {
            "open", "high", "low", "close", "volume", "market_cap"
        }

    def test_ohlc_ordering(self, small_universe):
        btc = small_universe.btc
        assert (btc["high"] >= btc["close"] - 1e-9).all()
        assert (btc["high"] >= btc["open"] - 1e-9).all()
        assert (btc["low"] <= btc["close"] + 1e-9).all()
        assert (btc["low"] <= btc["open"] + 1e-9).all()

    def test_open_is_previous_close(self, small_universe):
        btc = small_universe.btc
        assert np.allclose(btc["open"][1:], btc["close"][:-1])

    def test_price_times_supply_is_cap(self, small_universe):
        btc = small_universe.btc
        recon = btc["close"] * small_universe.btc_supply
        assert np.allclose(recon, btc["market_cap"])

    def test_volume_positive(self, small_universe):
        assert (small_universe.btc["volume"] > 0).all()

    def test_cap_matches_universe_column_zero(self, small_universe):
        assert np.allclose(
            small_universe.btc["market_cap"], small_universe.caps[:, 0]
        )
