"""Shared fixtures for synth tests (small_config/small_raw live in the
repository-wide tests/conftest.py)."""

import pytest

from repro.synth import generate_latent_market, generate_universe


@pytest.fixture(scope="session")
def small_latent(small_config):
    return generate_latent_market(small_config)


@pytest.fixture(scope="session")
def small_universe(small_config, small_latent):
    return generate_universe(small_config, small_latent)
