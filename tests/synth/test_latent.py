"""Unit tests for repro.synth.rng / regimes / latent."""

import numpy as np
import pytest

from repro.synth import (
    Regime,
    RegimeProcess,
    SeedBank,
    SimulationConfig,
    generate_latent_market,
)


class TestSeedBank:
    def test_same_name_same_stream(self):
        bank = SeedBank(42)
        a = bank.generator("prices").normal(size=5)
        b = bank.generator("prices").normal(size=5)
        assert np.array_equal(a, b)

    def test_different_names_different_streams(self):
        bank = SeedBank(42)
        a = bank.generator("prices").normal(size=5)
        b = bank.generator("flows").normal(size=5)
        assert not np.array_equal(a, b)

    def test_different_seeds_differ(self):
        a = SeedBank(1).generator("x").normal(size=5)
        b = SeedBank(2).generator("x").normal(size=5)
        assert not np.array_equal(a, b)

    def test_order_independence(self):
        bank1 = SeedBank(7)
        _ = bank1.generator("first").normal()
        late = bank1.generator("second").normal(size=3)
        bank2 = SeedBank(7)
        early = bank2.generator("second").normal(size=3)
        assert np.array_equal(late, early)

    def test_non_int_rejected(self):
        with pytest.raises(TypeError):
            SeedBank("42")


class TestRegimeProcess:
    def test_path_length_and_values(self):
        path = RegimeProcess().sample(500, np.random.default_rng(0))
        assert path.shape == (500,)
        assert set(np.unique(path)) <= {0, 1, 2, 3}

    def test_zero_days(self):
        assert RegimeProcess().sample(0, np.random.default_rng(0)).size == 0

    def test_negative_days(self):
        with pytest.raises(ValueError):
            RegimeProcess().sample(-1, np.random.default_rng(0))

    def test_regimes_are_sticky(self):
        path = RegimeProcess().sample(2000, np.random.default_rng(1))
        switches = np.sum(np.diff(path) != 0)
        assert switches < 60  # daily switch prob ~1 %

    def test_all_regimes_eventually_visited(self):
        path = RegimeProcess().sample(20000, np.random.default_rng(2))
        assert set(np.unique(path)) == {0, 1, 2, 3}

    def test_drift_vol_lookup(self):
        path = np.array([0, 1, 2, 3])
        drift = RegimeProcess.drift(path)
        vol = RegimeProcess.vol(path)
        assert drift[0] > 0 > drift[1]
        assert drift[3] < drift[1]  # crash is worst
        assert vol[3] == max(vol)

    def test_invalid_matrix_shape(self):
        with pytest.raises(ValueError):
            RegimeProcess(np.eye(3))

    def test_non_stochastic_matrix(self):
        bad = np.full((4, 4), 0.3)
        with pytest.raises(ValueError):
            RegimeProcess(bad)

    def test_negative_probabilities(self):
        bad = np.eye(4)
        bad[0, 0] = 1.5
        bad[0, 1] = -0.5
        with pytest.raises(ValueError):
            RegimeProcess(bad)

    def test_initial_state_respected(self):
        path = RegimeProcess().sample(
            10, np.random.default_rng(3), initial=Regime.BEAR
        )
        assert path[0] == Regime.BEAR


class TestLatentMarket:
    def test_shapes_consistent(self, small_latent):
        n = small_latent.n_days
        for arr in (
            small_latent.regimes,
            small_latent.macro,
            small_latent.adoption,
            small_latent.flows,
            small_latent.sentiment,
            small_latent.market_log_return,
            small_latent.market_log_level,
        ):
            assert arr.shape == (n,)

    def test_deterministic(self, small_config, small_latent):
        again = generate_latent_market(small_config)
        assert np.array_equal(
            again.market_log_level, small_latent.market_log_level
        )
        assert np.array_equal(again.flows, small_latent.flows)

    def test_adoption_monotone(self, small_latent):
        assert np.all(np.diff(small_latent.adoption) >= 0)

    def test_level_is_cumsum_of_returns(self, small_latent):
        assert np.allclose(
            small_latent.market_log_level,
            np.cumsum(small_latent.market_log_return),
        )

    def test_market_level_positive(self, small_latent):
        assert (small_latent.market_level() > 0).all()

    def test_all_finite(self, small_latent):
        for arr in (small_latent.macro, small_latent.flows,
                    small_latent.sentiment, small_latent.market_log_return):
            assert np.isfinite(arr).all()

    def test_sentiment_tracks_recent_returns(self, small_latent):
        """Sentiment chases the tape: correlated with trailing returns."""
        ret = small_latent.market_log_return
        trailing = np.convolve(ret, np.ones(7) / 7, mode="full")[:ret.size]
        corr = np.corrcoef(small_latent.sentiment, trailing)[0, 1]
        assert corr > 0.4

    def test_different_seed_changes_path(self, small_config):
        other = generate_latent_market(
            SimulationConfig(
                start=small_config.start, end=small_config.end,
                seed=small_config.seed + 1, n_assets=110,
            )
        )
        assert not np.array_equal(
            other.market_log_level,
            generate_latent_market(small_config).market_log_level,
        )


class TestConfigValidation:
    def test_too_few_assets(self):
        with pytest.raises(ValueError):
            SimulationConfig(n_assets=50)

    def test_negative_macro_lag(self):
        with pytest.raises(ValueError):
            SimulationConfig(macro_lag=-1)
