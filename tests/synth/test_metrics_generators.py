"""Unit tests for the on-chain / sentiment / tradfi / macro generators."""

import numpy as np
import pytest

from repro.categories import DataCategory
from repro.synth import (
    generate_btc_onchain,
    generate_macro,
    generate_sentiment,
    generate_tradfi,
    generate_usdc_onchain,
)


@pytest.fixture(scope="module")
def btc_onchain(small_config, small_latent, small_universe):
    return generate_btc_onchain(small_config, small_latent, small_universe)


@pytest.fixture(scope="module")
def usdc_onchain(small_config, small_latent, small_universe):
    return generate_usdc_onchain(small_config, small_latent, small_universe)


class TestBtcOnchain:
    def test_paper_metrics_present(self, btc_onchain):
        for name in (
            "RevAllTimeUSD", "CapRealUSD", "AdrBalUSD100Cnt",
            "SplyAdrBalUSD100", "SplyAdrBalNtv0.01", "SplyCur",
            "SplyActEver", "SplyActPct1yr", "SER", "VelCur1yr",
            "s2f_ratio", "fish_pct", "shrimps_pct", "total_balance",
            "RevHashRateUSD", "SplyMiner0HopAllUSD", "market_cap",
            "ROI1yr", "AdrBal1in1BCnt", "SplyAdrTop1Pct",
        ):
            assert name in btc_onchain, name

    def test_no_nans(self, btc_onchain):
        assert not any(v > 0 for v in btc_onchain.nan_fraction().values())

    def test_count_families_monotone_in_threshold(self, btc_onchain):
        """Higher balance threshold → (weakly) fewer addresses on average."""
        c1 = btc_onchain["AdrBalUSD1Cnt"].mean()
        c100 = btc_onchain["AdrBalUSD100Cnt"].mean()
        c1m = btc_onchain["AdrBalUSD1MCnt"].mean()
        assert c1 > c100 > c1m

    def test_supply_families_bounded_by_supply(self, btc_onchain,
                                               small_universe):
        supply = small_universe.btc_supply
        held = btc_onchain["SplyAdrBalNtv1"]
        assert (held <= supply * 1.2).all()  # noise tolerance

    def test_rev_all_time_monotone(self, btc_onchain):
        assert np.all(np.diff(btc_onchain["RevAllTimeUSD"]) > 0)

    def test_pct_metrics_in_range(self, btc_onchain):
        assert (btc_onchain["SplyActPct1yr"] >= 0).all()
        assert (btc_onchain["fish_pct"] >= 0).all()
        assert (btc_onchain["fish_pct"] <= 1).all()
        assert (btc_onchain["shrimps_pct"] <= 1).all()

    def test_s2f_grows(self, btc_onchain):
        """Stock-to-flow rises as issuance decays."""
        s2f = btc_onchain["s2f_ratio"]
        assert s2f[-1] > s2f[0]

    def test_deterministic(self, small_config, small_latent,
                           small_universe, btc_onchain):
        again = generate_btc_onchain(small_config, small_latent,
                                     small_universe)
        assert again == btc_onchain

    def test_correlates_with_adoption(self, btc_onchain, small_latent):
        """Address counts are views of the adoption curve."""
        corr = np.corrcoef(
            np.log(btc_onchain["AdrBalUSD1Cnt"]), small_latent.adoption
        )[0, 1]
        assert corr > 0.9


class TestUsdcOnchain:
    def test_paper_metrics_present(self, usdc_onchain):
        for name in (
            "usdc_SplyCur", "usdc_AdrBalNtv1Cnt", "usdc_AdrBalNtv10KCnt",
            "usdc_SplyAdrBalNtv100", "usdc_SplyAct7d", "usdc_SplyAct2yr",
            "usdc_CapMrktFFUSD", "usdc_SER", "usdc_SplyActPct1yr",
            "usdc_AdrBalUSD100KCnt", "usdc_SplyAdrBalUSD10",
        ):
            assert name in usdc_onchain, name

    def test_nan_before_launch(self, usdc_onchain, small_config):
        sply = usdc_onchain["usdc_SplyCur"]
        pos = usdc_onchain.index.position(small_config.usdc_start)
        assert np.isnan(sply[:pos]).all()
        assert not np.isnan(sply[pos:]).any()

    def test_supply_tracks_flows(self, usdc_onchain, small_latent,
                                 small_config):
        """Log supply growth mirrors the latent flow process."""
        pos = usdc_onchain.index.position(small_config.usdc_start)
        sply = usdc_onchain["usdc_SplyCur"][pos:]
        growth = np.diff(np.log(sply))
        flows = small_latent.flows[pos + 1:]
        assert np.corrcoef(growth, flows)[0, 1] > 0.5

    def test_prefix_convention(self, usdc_onchain):
        assert all(c.startswith("usdc_") for c in usdc_onchain.columns)


class TestSentiment:
    def test_metrics_present(self, small_config, small_latent):
        frame = generate_sentiment(small_config, small_latent)
        for name in ("fear_greed_index", "gt_Bitcoin_monthly",
                     "gt_Ethereum_monthly", "gt_Cryptocurrency_monthly",
                     "social_volume", "social_sentiment_score"):
            assert name in frame, name

    def test_fear_greed_range_and_start(self, small_config, small_latent):
        frame = generate_sentiment(small_config, small_latent)
        fg = frame["fear_greed_index"]
        pos = frame.index.position(small_config.fear_greed_start)
        assert np.isnan(fg[:pos]).all()
        valid = fg[pos:]
        assert (valid >= 0).all() and (valid <= 100).all()

    def test_shares_sum_to_volume(self, small_config, small_latent):
        frame = generate_sentiment(small_config, small_latent)
        total = (
            frame["social_posts_positive"]
            + frame["social_posts_negative"]
            + frame["social_posts_neutral"]
        )
        assert (total <= frame["social_volume"] * 1.0001).all()

    def test_google_trends_monthly_steps(self, small_config, small_latent):
        frame = generate_sentiment(small_config, small_latent)
        gt = frame["gt_Bitcoin_monthly"]
        # a step series changes value on far fewer than all days
        changes = np.sum(np.abs(np.diff(gt)) > 1e-12)
        assert changes < 40  # ~one change per month over two years

    def test_sentiment_score_tracks_latent(self, small_config,
                                           small_latent):
        frame = generate_sentiment(small_config, small_latent)
        corr = np.corrcoef(
            frame["social_sentiment_score"], small_latent.sentiment
        )[0, 1]
        assert corr > 0.5


class TestTradfiAndMacro:
    def test_tradfi_columns(self, small_config, small_latent):
        frame = generate_tradfi(small_config, small_latent)
        for name in ("QQQ_Close", "UUP_Close", "EURUSD_Close",
                     "BSV_Close", "MBB_Close", "VIX_Close"):
            assert name in frame, name

    def test_tradfi_positive(self, small_config, small_latent):
        frame = generate_tradfi(small_config, small_latent)
        for name in frame.columns:
            assert (frame[name] > 0).all(), name

    def test_opposite_macro_betas(self, small_config, small_latent):
        """QQQ (risk-on) and UUP (dollar) move against each other with
        respect to the macro factor."""
        frame = generate_tradfi(small_config, small_latent)
        qqq = np.diff(np.log(frame["QQQ_Close"]))
        uup = np.diff(np.log(frame["UUP_Close"]))
        macro_chg = np.diff(small_latent.macro)
        assert np.corrcoef(qqq, macro_chg)[0, 1] > 0.1
        assert np.corrcoef(uup, macro_chg)[0, 1] < -0.1

    def test_macro_columns(self, small_config, small_latent):
        frame = generate_macro(small_config, small_latent)
        assert frame.n_cols == 8
        for name in ("fed_funds_rate", "hicp_inflation_yoy",
                     "policy_uncertainty_index", "unemployment_rate"):
            assert name in frame, name

    def test_policy_rate_steps_in_quarters(self, small_config,
                                           small_latent):
        frame = generate_macro(small_config, small_latent)
        rate = frame["fed_funds_rate"]
        steps = np.abs(np.diff(rate))
        nonzero = steps[steps > 0]
        # 25 bp granularity
        assert np.allclose(nonzero / 0.25, np.round(nonzero / 0.25))

    def test_macro_lagged_vs_tradfi(self, small_config, small_latent):
        """Official prints lag the factor more than tradfi indices do."""
        macro_frame = generate_macro(small_config, small_latent)
        pui = -macro_frame["policy_uncertainty_index"]  # loads on +macro
        factor = small_latent.macro
        best_lag_macro = _best_lag(pui, factor)
        assert best_lag_macro >= 20  # publication delay visible


def _best_lag(series: np.ndarray, factor: np.ndarray,
              max_lag: int = 90) -> int:
    """Lag (in days) maximising corr(series_t, factor_{t-lag})."""
    best, best_corr = 0, -np.inf
    for lag in range(0, max_lag + 1, 5):
        if lag == 0:
            corr = np.corrcoef(series, factor)[0, 1]
        else:
            corr = np.corrcoef(series[lag:], factor[:-lag])[0, 1]
        if corr > best_corr:
            best, best_corr = lag, corr
    return best


class TestCatalogIntegration:
    def test_raw_dataset_categories(self, small_raw):
        counts = small_raw.category_counts()
        assert counts[DataCategory.MACRO] == 8
        assert counts[DataCategory.ONCHAIN_BTC] > 70
        assert counts[DataCategory.ONCHAIN_USDC] > 50
        assert counts[DataCategory.TECHNICAL] > 40
        assert sum(counts.values()) == small_raw.n_metrics

    def test_columns_in_roundtrip(self, small_raw):
        total = 0
        for category in DataCategory:
            cols = small_raw.columns_in(category)
            total += len(cols)
            for col in cols:
                assert small_raw.categories[col] is category
        assert total == small_raw.n_metrics

    def test_no_duplicate_columns(self, small_raw):
        cols = small_raw.features.columns
        assert len(cols) == len(set(cols))

    def test_deterministic_dataset(self, small_raw, small_config):
        from repro.synth import generate_raw_dataset

        again = generate_raw_dataset(small_config)
        assert again.features == small_raw.features
