"""Tests for the ETH on-chain extension (§5 on-chain diversification)."""

import numpy as np
import pytest

from repro.categories import DataCategory
from repro.synth import (
    SimulationConfig,
    generate_eth_onchain,
    generate_raw_dataset,
)


@pytest.fixture(scope="module")
def eth_frame(small_config, small_latent, small_universe):
    return generate_eth_onchain(small_config, small_latent, small_universe)


@pytest.fixture(scope="module")
def raw_with_eth(small_config):
    cfg = SimulationConfig(
        start=small_config.start, end=small_config.end,
        seed=small_config.seed, n_assets=small_config.n_assets,
        include_eth=True,
    )
    return generate_raw_dataset(cfg)


class TestEthGenerator:
    def test_defi_metrics_present(self, eth_frame):
        for name in ("eth_GasUsed", "eth_DeFiTVL", "eth_StakedPct",
                     "eth_ContractCallCnt", "eth_SplyCur",
                     "eth_market_cap", "eth_VelCur1yr"):
            assert name in eth_frame, name

    def test_prefix_convention(self, eth_frame):
        assert all(c.startswith("eth_") for c in eth_frame.columns)

    def test_no_nans(self, eth_frame):
        assert not any(v > 0 for v in eth_frame.nan_fraction().values())

    def test_all_positive(self, eth_frame):
        for name in eth_frame.columns:
            assert (eth_frame[name] > 0).all(), name

    def test_staked_pct_bounded(self, eth_frame):
        staked = eth_frame["eth_StakedPct"]
        assert (staked >= 0).all() and (staked <= 60).all()

    def test_cap_tracks_market(self, eth_frame, small_latent):
        corr = np.corrcoef(
            np.log(eth_frame["eth_market_cap"]),
            small_latent.market_log_level,
        )[0, 1]
        assert corr > 0.9

    def test_tvl_tracks_cumulative_flows(self, eth_frame, small_latent):
        corr = np.corrcoef(
            np.log(eth_frame["eth_DeFiTVL"]),
            np.cumsum(small_latent.flows),
        )[0, 1]
        assert corr > 0.5

    def test_deterministic(self, small_config, small_latent,
                           small_universe, eth_frame):
        again = generate_eth_onchain(small_config, small_latent,
                                     small_universe)
        assert again == eth_frame


class TestDatasetIntegration:
    def test_excluded_by_default(self, small_raw):
        assert small_raw.columns_in(DataCategory.ONCHAIN_ETH) == []

    def test_included_when_enabled(self, raw_with_eth):
        eth_cols = raw_with_eth.columns_in(DataCategory.ONCHAIN_ETH)
        assert len(eth_cols) >= 20
        assert all(c.startswith("eth_") for c in eth_cols)

    def test_other_categories_unchanged(self, small_raw, raw_with_eth):
        for cat in (DataCategory.TECHNICAL, DataCategory.ONCHAIN_BTC,
                    DataCategory.MACRO):
            assert (small_raw.columns_in(cat)
                    == raw_with_eth.columns_in(cat))

    def test_scenario_pipeline_accepts_eth(self, raw_with_eth):
        from repro.core.scenarios import build_scenario

        scenario = build_scenario(raw_with_eth, "2019", 7)
        eth_in_scenario = scenario.columns_in(DataCategory.ONCHAIN_ETH)
        assert len(eth_in_scenario) >= 20
