#!/usr/bin/env python
"""Lint: no bare ``print(`` calls in library code.

Library modules must log through :mod:`repro.obs` so output stays
structured and configurable; only the CLI and the report renderers are
user-facing text emitters.  The check parses each file with ``ast`` so
``print`` mentioned inside docstrings or comments does not trip it.

The scan is recursive, so new packages (``repro.parallel``,
``repro.obs``, ...) are covered the moment they land under a scanned
root — worker-side code in particular must log through
:mod:`repro.obs`, whose records are merged back into the parent run.

Usage: ``python tools/check_no_print.py [root ...]`` (default
``src/repro``; several roots may be given).  Exits 1 listing
offenders, 0 when clean.
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path

#: Modules allowed to print: the CLI and the plain-text/markdown
#: report renderers (paths relative to the scanned root).
ALLOWED = {
    "cli.py",
    "core/report.py",
    "core/reporting.py",
}


def find_print_calls(path: Path) -> list[int]:
    """Line numbers of every ``print(...)`` call in a python file."""
    tree = ast.parse(path.read_text(), filename=str(path))
    lines = []
    for node in ast.walk(tree):
        if (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "print"):
            lines.append(node.lineno)
    return lines


def main(argv: list[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    roots = [Path(arg) for arg in argv] or [Path("src/repro")]
    offenders = []
    for root in roots:
        if not root.is_dir():
            print(f"error: {root} is not a directory", file=sys.stderr)
            return 2
        for path in sorted(root.rglob("*.py")):
            rel = path.relative_to(root).as_posix()
            if rel in ALLOWED:
                continue
            for lineno in find_print_calls(path):
                offenders.append(f"{path}:{lineno}")
    if offenders:
        print("bare print() calls found (use repro.obs.get_logger):",
              file=sys.stderr)
        for offender in offenders:
            print(f"  {offender}", file=sys.stderr)
        return 1
    print(f"ok: no bare print() outside {sorted(ALLOWED)}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
