#!/usr/bin/env python
"""Isolated-category deep dive (§5 future work).

Profiles every data source standing alone on a 30-day forecasting
scenario: standalone accuracy, internal top features, and redundancy —
the "detailed analysis of isolated categories" the paper proposes for
balancing category representation.

Usage::

    python examples/category_deep_dive.py [seed]
"""

import sys

from repro import SimulationConfig, build_scenario, generate_raw_dataset
from repro.categories import CATEGORY_LABELS
from repro.core.category_analysis import analyze_all_categories
from repro.core.reporting import format_table


def main(seed: int = 20240701) -> None:
    raw = generate_raw_dataset(SimulationConfig(seed=seed))
    scenario = build_scenario(raw, "2019", 30)
    print(f"scenario {scenario.key}: {scenario.n_samples} rows x "
          f"{scenario.n_features} candidates\n")

    profiles = analyze_all_categories(
        scenario,
        rf_params={"n_estimators": 15, "max_depth": 12,
                   "max_features": "sqrt", "min_samples_leaf": 2},
    )

    rows = []
    for category, profile in sorted(
        profiles.items(), key=lambda kv: kv[1].cv_mse
    ):
        rows.append([
            CATEGORY_LABELS[category],
            profile.n_features,
            f"{profile.cv_mse:.3g}",
            f"{profile.cv_r2:+.3f}",
            f"{profile.redundancy:.2f}",
        ])
    print(format_table(
        ["Category", "n features", "standalone CV MSE", "CV R2",
         "redundancy"],
        rows,
        title="Standalone predictive power per data source (best first)",
    ))

    print("\n=== Top 5 features inside each category ===")
    for category, profile in profiles.items():
        print(f"\n{CATEGORY_LABELS[category]}:")
        for name, share in profile.ranked_features()[:5]:
            print(f"  {share:6.1%}  {name}")

    print("\nInterpretation: categories with poor standalone MSE but "
          "features that\nsurvive the paper's diverse selection (e.g. "
          "macro at long horizons) carry\ncomplementary information — "
          "exactly the diversity effect the paper measures.")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 20240701)
