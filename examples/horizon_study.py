#!/usr/bin/env python
"""Horizon study: how category importance shifts from 1-day to 180-day
forecasts (a compact version of §4.1-4.2).

For a range of prediction windows, ranks every data category by the total
random-forest importance of its features, showing the paper's headline
dynamic: technical indicators dominate short windows, on-chain and
traditional/macro series take over long ones.

Usage::

    python examples/horizon_study.py [seed]
"""

import sys

import numpy as np

from repro import DataCategory, SimulationConfig, build_scenario
from repro.categories import CATEGORY_LABELS
from repro.core.reporting import format_table
from repro.ml import RandomForestRegressor
from repro.synth import generate_raw_dataset

WINDOWS = (1, 7, 30, 90, 180)


def category_importance_shares(scenario) -> dict[DataCategory, float]:
    """Total normalised RF importance per category for one scenario."""
    model = RandomForestRegressor(
        n_estimators=20, max_depth=12, max_features="sqrt",
        min_samples_leaf=2, random_state=0,
    ).fit(scenario.X, scenario.y)
    importance = model.feature_importances_
    shares: dict[DataCategory, float] = {c: 0.0 for c in DataCategory}
    for name, value in zip(scenario.feature_names, importance):
        shares[scenario.categories[name]] += float(value)
    return shares


def main(seed: int = 20240701) -> None:
    raw = generate_raw_dataset(SimulationConfig(seed=seed))
    print(f"dataset: {raw.n_metrics} metrics, "
          f"{raw.features.n_rows} days\n")

    per_window: dict[int, dict[DataCategory, float]] = {}
    for window in WINDOWS:
        scenario = build_scenario(raw, "2019", window)
        per_window[window] = category_importance_shares(scenario)
        print(f"trained w={window} "
              f"({scenario.n_samples} rows x {scenario.n_features} cols)")

    print("\n=== Share of total model importance by category "
          "(set 2019) ===")
    categories = [c for c in DataCategory
                  if any(per_window[w].get(c, 0) > 0 for w in WINDOWS)]
    rows = []
    for category in categories:
        rows.append(
            [CATEGORY_LABELS[category]]
            + [f"{per_window[w][category]:.1%}" for w in WINDOWS]
        )
    print(format_table(
        ["Category"] + [f"w={w}" for w in WINDOWS], rows
    ))

    print("\n=== Reading the table ===")
    tech_series = [per_window[w][DataCategory.TECHNICAL] for w in WINDOWS]
    usdc_series = [
        per_window[w][DataCategory.ONCHAIN_USDC] for w in WINDOWS
    ]
    trend = "falls" if tech_series[-1] < tech_series[0] else "rises"
    print(f"technical importance {trend} from {tech_series[0]:.1%} (w=1) "
          f"to {tech_series[-1]:.1%} (w=180)")
    trend = "rises" if usdc_series[-1] > usdc_series[0] else "falls"
    print(f"USDC on-chain importance {trend} from {usdc_series[0]:.1%} "
          f"(w=1) to {usdc_series[-1]:.1%} (w=180)")

    print("\n=== Top 5 individual features at the extremes ===")
    for window in (1, 180):
        scenario = build_scenario(raw, "2019", window)
        model = RandomForestRegressor(
            n_estimators=20, max_depth=12, max_features="sqrt",
            min_samples_leaf=2, random_state=0,
        ).fit(scenario.X, scenario.y)
        order = np.argsort(-model.feature_importances_)[:5]
        print(f"w={window}:")
        for i in order:
            name = scenario.feature_names[i]
            print(f"  {name:32s} [{scenario.categories[name]}] "
                  f"{model.feature_importances_[i]:.3f}")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 20240701)
