#!/usr/bin/env python
"""Quickstart: simulate the market, select features, forecast Crypto100.

Runs the full public-API loop in a couple of minutes:

1. generate the synthetic multi-source dataset (the stand-in for the
   paper's Coinmetrics / CoinGecko / ECB collections),
2. build one forecasting scenario (set 2019, 30-day window),
3. reduce the ~230 candidate metrics with the Feature Reduction
   Algorithm + SHAP,
4. train a random forest on the diverse vector vs. technical-only
   features and compare held-out MSE.

Usage::

    python examples/quickstart.py [seed]
"""

import sys

from repro import (
    DataCategory,
    FRAConfig,
    SHAPConfig,
    SimulationConfig,
    build_scenario,
    generate_raw_dataset,
    select_final_features,
)
from repro.ml import (
    RandomForestRegressor,
    mean_squared_error,
    mse_improvement_pct,
    r2_score,
)


def main(seed: int = 20240701) -> None:
    print("=== 1. Simulate the market ===")
    config = SimulationConfig(seed=seed)
    raw = generate_raw_dataset(config)
    counts = ", ".join(
        f"{cat.value}={n}" for cat, n in raw.category_counts().items()
    )
    print(f"generated {raw.n_metrics} daily metrics over "
          f"{raw.features.n_rows} days ({counts})")

    print("\n=== 2. Build a scenario: set 2019, 30-day window ===")
    scenario = build_scenario(raw, "2019", 30)
    print(f"{scenario.n_samples} supervised rows x "
          f"{scenario.n_features} candidate features "
          f"({scenario.cleaning_report.summary()})")

    print("\n=== 3. Feature selection (FRA + SHAP) ===")
    selection = select_final_features(
        scenario.X, scenario.y, scenario.feature_names,
        fra_config=FRAConfig(
            rf_params={"n_estimators": 12, "max_depth": 10,
                       "max_features": "sqrt", "min_samples_leaf": 2},
            gb_params={"n_estimators": 25, "max_depth": 3,
                       "learning_rate": 0.12, "max_features": "sqrt",
                       "subsample": 0.8, "reg_lambda": 1.0},
            pfi_repeats=1, pfi_max_rows=250,
        ),
        shap_config=SHAPConfig(max_rows=60),
        top_k=50,
    )
    print(f"final vector: {selection.n_features} features "
          f"(FRA kept {len(selection.fra.selected)}, "
          f"SHAP top-100 overlap {selection.overlap_top100})")
    print("top 10 by FRA consensus:")
    for name in selection.fra.selected[:10]:
        print(f"  {name:32s} [{scenario.categories[name]}]")

    print("\n=== 4. Diverse vs single-category forecasting ===")
    X_tr, X_te, y_tr, y_te = scenario.split(0.2)

    def fit_eval(names: list[str], label: str) -> float:
        cols = [scenario.feature_names.index(n) for n in names]
        model = RandomForestRegressor(
            n_estimators=25, max_depth=12, max_features="sqrt",
            random_state=0,
        ).fit(X_tr[:, cols], y_tr)
        pred = model.predict(X_te[:, cols])
        mse = mean_squared_error(y_te, pred)
        print(f"  {label:28s} test MSE {mse:12.4g}   "
              f"R2 {r2_score(y_te, pred):+.3f}")
        return mse

    mse_diverse = fit_eval(selection.final_features, "diverse (final vector)")
    technical = scenario.columns_in(DataCategory.TECHNICAL)
    mse_technical = fit_eval(technical, "technical indicators only")
    sentiment = scenario.columns_in(DataCategory.SENTIMENT)
    mse_sentiment = fit_eval(sentiment, "sentiment metrics only")

    print("\nimprovement of diverse over technical-only: "
          f"{mse_improvement_pct(mse_technical, mse_diverse):.1f}%")
    print("improvement of diverse over sentiment-only: "
          f"{mse_improvement_pct(mse_sentiment, mse_diverse):.1f}%")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 20240701)
