#!/usr/bin/env python
"""The Crypto100 index: construction, scaling-factor tuning, Figure 1-2 data.

Reproduces the index-design analysis of §3.1.1:

* how much of the market the top-100 assets capture (Figure 1),
* how the scaling-factor power changes the index's comparability with the
  BTC price (Figure 2), and why the paper settles on power 7.

Usage::

    python examples/crypto100_index.py [seed]
"""

import sys

import numpy as np

from repro import SimulationConfig
from repro.core import (
    crypto100_index,
    scaling_factor_sweep,
    tracking_distance,
    tune_scaling_power,
)
from repro.core.reporting import format_table, render_series
from repro.synth import generate_latent_market, generate_universe


def main(seed: int = 20240701) -> None:
    config = SimulationConfig(seed=seed)
    latent = generate_latent_market(config)
    universe = generate_universe(config, latent)

    print("=== Figure 1: top-100 cap vs total market cap ===")
    index_frame = crypto100_index(universe)
    share = index_frame["top100_cap"] / index_frame["total_cap"]
    print(render_series("top100_cap ($)", index_frame["top100_cap"]))
    print(render_series("total_cap  ($)", index_frame["total_cap"]))
    print(f"top-100 share of the market: mean {share.mean():.2%}, "
          f"min {share.min():.2%} -> the top-100 cut represents the "
          f"whole market")

    print("\n=== Figure 2: scaling-factor powers vs the BTC price ===")
    btc = universe.btc["close"]
    sweep = scaling_factor_sweep(universe, powers=(5, 6, 7, 8))
    rows = []
    for power, series in sorted(sweep.items()):
        rows.append([
            power,
            f"{series[-1]:,.0f}",
            f"{btc[-1]:,.0f}",
            f"{tracking_distance(series, btc):.3f}",
        ])
    print(format_table(
        ["power", "index (last day)", "BTC price (last day)",
         "mean |log10 ratio|"],
        rows,
    ))

    best, distances = tune_scaling_power(universe)
    print(f"\nbest power by tracking distance: {best} "
          f"(paper's choice: 7)")
    print("distance by power:",
          {p: round(d, 3) for p, d in sorted(distances.items())})

    print("\n=== Index behaviour ===")
    crypto100 = index_frame["crypto100"]
    print(render_series("Crypto100", crypto100))
    daily = np.diff(np.log(crypto100))
    print(f"annualised volatility: {daily.std() * np.sqrt(365):.1%}")
    print(f"corr(Crypto100, BTC price): "
          f"{np.corrcoef(crypto100, btc)[0, 1]:.4f}")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 20240701)
