#!/usr/bin/env python
"""Cross-category feature engineering (§5 future work).

"Feature engineering techniques could also help discover valuable
relationships between data categories" — this example builds engineered
features that *combine* sources (price-to-realized-cap style ratios,
stablecoin-supply-to-market-cap, sentiment/level spreads) and measures
whether they add predictive value on top of the raw diverse vector.

Usage::

    python examples/feature_engineering.py [seed]
"""

import sys

import numpy as np

from repro import SimulationConfig, build_scenario, generate_raw_dataset
from repro.core.reporting import format_table
from repro.features import interaction_features, lag_features
from repro.frame import Frame, concat_columns, date_range, fill_frame
from repro.ml import KFold, RandomForestRegressor, cross_val_predict
from repro.ml import mean_squared_error

WINDOW = 30

#: Cross-category pairs with an economic story: price vs fair value,
#: stablecoin capital vs market size, mood vs level.
INTERACTION_PAIRS = [
    ("market_cap", "CapRealUSD"),           # MVRV-style ratio
    ("usdc_SplyCur", "market_cap"),         # stablecoin share of market
    ("social_sentiment_score", "EMA30_close-price"),  # mood vs trend
    ("QQQ_Close", "market_cap"),            # tradfi vs crypto level
]


def cv_mse(X, y, seed=0):
    pred = cross_val_predict(
        RandomForestRegressor(n_estimators=20, max_depth=12,
                              max_features="sqrt", min_samples_leaf=2,
                              random_state=seed),
        X, y, cv=KFold(3, shuffle=True, random_state=seed),
    )
    return mean_squared_error(y, pred)


def main(seed: int = 20240701) -> None:
    raw = generate_raw_dataset(SimulationConfig(seed=seed))
    scenario = build_scenario(raw, "2019", WINDOW)
    print(f"scenario {scenario.key}: {scenario.n_samples} rows x "
          f"{scenario.n_features} raw candidates\n")

    # Rebuild a frame over the supervised rows so the constructors can
    # run on aligned columns.
    idx = date_range("2019-01-01", periods=scenario.n_samples)
    base = Frame.from_matrix(idx, scenario.X, scenario.feature_names)

    engineered = interaction_features(
        base,
        [(a, b) for a, b in INTERACTION_PAIRS
         if a in base and b in base],
        ops=("ratio", "spread"),
    )
    lagged = lag_features(base, ["market_cap", "usdc_SplyCur"],
                          lags=[7, 30])
    extra = concat_columns(engineered, lagged)
    extra = fill_frame(extra, "bfill")  # lag warm-ups
    print(f"engineered {extra.n_cols} cross-category features:")
    for name in extra.columns:
        print(f"  {name}")

    combined = concat_columns(base, extra)
    y = scenario.y

    mse_raw = cv_mse(base.to_matrix(), y)
    mse_combined = cv_mse(combined.to_matrix(), y)
    mse_engineered_only = cv_mse(extra.to_matrix(), y)

    print()
    print(format_table(
        ["feature set", "n features", "CV MSE", "vs raw"],
        [
            ["raw candidates", base.n_cols, f"{mse_raw:.4g}", "-"],
            ["engineered only", extra.n_cols,
             f"{mse_engineered_only:.4g}",
             f"{(mse_engineered_only - mse_raw) / mse_raw * 100:+.1f}%"],
            ["raw + engineered", combined.n_cols,
             f"{mse_combined:.4g}",
             f"{(mse_combined - mse_raw) / mse_raw * 100:+.1f}%"],
        ],
        title=f"Cross-category feature engineering on {scenario.key}",
    ))

    ratio = np.nan_to_num(extra["market_cap_ratio_CapRealUSD"])
    fut_ret = np.log(y) - np.log(base["EMA5_close-price"])
    corr = np.corrcoef(ratio, fut_ret)[0, 1]
    print(f"\nMVRV-style ratio vs {WINDOW}d-ahead log move: "
          f"corr {corr:+.2f}")
    print("A handful of engineered ratios carries a surprising share of "
          "the raw\nmatrix's information — the relationship-discovery "
          "effect §5 hypothesises.")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 20240701)
