#!/usr/bin/env python
"""Forecast-driven portfolio allocation (the paper's §5 'application in
finance' future-work direction).

Backtests long/flat strategies on the Crypto100 index with the
`repro.backtest` framework: hold the index only when a forecaster
predicts it to rise over the next 30 days, otherwise sit in cash (a
stablecoin). Compares a diversity-trained forecaster against a
technical-only forecaster and buy-and-hold — quantifying what
data-source diversity is worth in P&L terms, not just MSE.

Usage::

    python examples/portfolio_backtest.py [seed]
"""

import sys

import numpy as np

from repro import (
    DataCategory,
    FRAConfig,
    SHAPConfig,
    SimulationConfig,
    build_scenario,
    generate_raw_dataset,
    select_final_features,
)
from repro.backtest import (
    BacktestConfig,
    BuyAndHold,
    LongFlat,
    walk_forward,
)
from repro.core.reporting import format_table
from repro.ml import RandomForestRegressor

WINDOW = 30
TRAIN_FRAC = 0.6


def forecaster_run(scenario, feature_names, label):
    """Train on the first 60 %, emit walk-forward forecasts on the rest.

    Returns (prices over the evaluation span, aligned forecasts).
    ``scenario.y[t]`` is the price at t+WINDOW, so the price at decision
    time t is ``y[t - WINDOW]``.
    """
    cols = [scenario.feature_names.index(n) for n in feature_names]
    X = scenario.X[:, cols]
    y = scenario.y
    cut = int(scenario.n_samples * TRAIN_FRAC)
    model = RandomForestRegressor(
        n_estimators=25, max_depth=12, max_features="sqrt",
        min_samples_leaf=2, random_state=0,
    ).fit(X[:cut], y[:cut])
    forecasts = model.predict(X[cut:])
    prices = y[cut - WINDOW:scenario.n_samples - WINDOW]
    print(f"  trained {label}: {len(forecasts)} evaluation days")
    return prices, forecasts


def main(seed: int = 20240701) -> None:
    raw = generate_raw_dataset(SimulationConfig(seed=seed))
    scenario = build_scenario(raw, "2019", WINDOW)
    print(f"scenario {scenario.key}: {scenario.n_samples} rows x "
          f"{scenario.n_features} candidates")

    print("selecting the diverse feature vector (FRA + SHAP)...")
    selection = select_final_features(
        scenario.X, scenario.y, scenario.feature_names,
        fra_config=FRAConfig(
            rf_params={"n_estimators": 10, "max_depth": 10,
                       "max_features": "sqrt", "min_samples_leaf": 2},
            gb_params={"n_estimators": 20, "max_depth": 3,
                       "learning_rate": 0.15, "max_features": "sqrt",
                       "subsample": 0.8, "reg_lambda": 1.0},
            pfi_repeats=1, pfi_max_rows=200,
        ),
        shap_config=SHAPConfig(max_rows=50),
        top_k=50,
    )
    print(f"final vector: {selection.n_features} features\n")

    config = BacktestConfig(rebalance_every=7, cost_bps=10.0)
    runs = []

    prices, forecasts = forecaster_run(
        scenario, selection.final_features, "diverse forecaster"
    )
    runs.append(("diverse forecaster",
                 walk_forward(prices, forecasts, LongFlat(), config)))

    technical = scenario.columns_in(DataCategory.TECHNICAL)
    prices_t, forecasts_t = forecaster_run(
        scenario, technical, "technical-only forecaster"
    )
    runs.append(("technical-only forecaster",
                 walk_forward(prices_t, forecasts_t, LongFlat(), config)))

    runs.append(("buy & hold Crypto100",
                 walk_forward(prices, prices, BuyAndHold(), config)))

    rows = []
    for label, result in runs:
        stats = result.summary()
        rows.append([
            label,
            f"{1 + stats['total_return']:.2f}",
            f"{stats['annualized_volatility']:.1%}",
            f"{stats['max_drawdown']:.1%}",
            f"{stats['sharpe']:.2f}",
            int(stats["n_trades"]),
        ])
    print()
    print(format_table(
        ["Strategy", "Final equity (x)", "Ann. vol", "Max DD",
         "Sharpe", "trades"],
        rows,
        title="Walk-forward long/flat backtest on the Crypto100 index "
              f"(w={WINDOW}, costs 10 bps)",
    ))
    print("\nNote: a toy strategy on synthetic data — the point is the "
          "relative ordering\n(diverse forecaster vs technical-only), "
          "not the absolute returns.")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 20240701)
