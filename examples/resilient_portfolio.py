#!/usr/bin/env python
"""Resilient multi-asset crypto portfolios (§5 future work).

Runs the paper's proposed follow-up end-to-end on the simulated
universe: take the largest assets, estimate covariances on trailing
returns, and compare allocation schemes — cap-weighted (the Crypto100's
implicit scheme), 1/N, long-only minimum variance, and risk parity —
through multiple bull/bear regimes with transaction costs.

Usage::

    python examples/resilient_portfolio.py [seed]
"""

import sys

import numpy as np

from repro import SimulationConfig
from repro.core.reporting import format_table
from repro.portfolio import (
    RebalanceConfig,
    cap_weights,
    equal_weights,
    min_variance_weights,
    risk_parity_weights,
    sample_covariance,
    shrinkage_covariance,
    simulate_portfolio,
)
from repro.synth import generate_latent_market, generate_universe

N_ASSETS = 10


def main(seed: int = 20240701) -> None:
    config = SimulationConfig(seed=seed)
    latent = generate_latent_market(config)
    universe = generate_universe(config, latent)

    # Pick the N largest assets by average cap and build a price panel
    # (cap / a fixed unit supply is a price up to scale).
    mean_caps = universe.caps.mean(axis=0)
    top = np.argsort(-mean_caps)[:N_ASSETS]
    panel = universe.caps[:, top]
    names = [universe.names[i] for i in top]
    print(f"universe: {panel.shape[0]} days, basket = {names}\n")

    cfg = RebalanceConfig(lookback=90, rebalance_every=30, cost_bps=10.0)

    def rule_equal(trailing):
        return equal_weights(trailing.shape[1])

    def rule_minvar(trailing):
        return min_variance_weights(shrinkage_covariance(trailing))

    def rule_riskparity(trailing):
        return risk_parity_weights(
            sample_covariance(trailing) + 1e-8 * np.eye(trailing.shape[1])
        )

    runs = {
        "1/N": simulate_portfolio(panel, rule_equal, cfg),
        "min variance (shrunk cov)": simulate_portfolio(
            panel, rule_minvar, cfg
        ),
        "risk parity": simulate_portfolio(panel, rule_riskparity, cfg),
    }

    # Cap-weighting drifts with the caps themselves: recompute at each
    # rebalance from current caps via a closure over the day counter.
    state = {"day": cfg.lookback}

    def rule_cap(trailing):
        weights = cap_weights(panel[state["day"]])
        state["day"] += cfg.rebalance_every
        return weights

    runs["cap-weighted (index)"] = simulate_portfolio(panel, rule_cap, cfg)

    rows = []
    for label, run in runs.items():
        stats = run.summary()
        rows.append([
            label,
            f"{1 + stats['total_return']:.2f}x",
            f"{stats['annualized_return']:+.1%}",
            f"{stats['annualized_volatility']:.1%}",
            f"{stats['max_drawdown']:.1%}",
            f"{stats['sharpe']:.2f}",
        ])
    print(format_table(
        ["Allocation", "Final equity", "Ann. return", "Ann. vol",
         "Max DD", "Sharpe"],
        rows,
        title=f"Top-{N_ASSETS} crypto portfolio, 90d lookback, "
              "30d rebalancing, 10 bps costs",
    ))

    vol_rank = sorted(
        runs, key=lambda k: runs[k].summary()["annualized_volatility"]
    )
    print(f"\ncalmest allocation: {vol_rank[0]}; "
          f"most volatile: {vol_rank[-1]}")
    print("Risk-based schemes (min-var, risk parity) trade upside for "
          "smaller drawdowns —\nthe 'resilience' the paper's future work "
          "aims at.")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 20240701)
