"""Compatibility shim for environments without PEP 660 support.

Modern installs should use ``pip install -e .`` (pyproject.toml is the
source of truth); this file only enables ``python setup.py develop`` on
minimal offline toolchains lacking the ``wheel`` package.
"""

from setuptools import setup

setup()
